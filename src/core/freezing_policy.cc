#include "src/core/freezing_policy.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace egeria {

namespace {
// Tolerance floor so that modules whose plasticity is flat from the very first
// readings (max initial slope ~ 0) can still freeze.
constexpr double kToleranceFloor = 1e-7;
}  // namespace

FreezingPolicy::FreezingPolicy(const EgeriaConfig& cfg, int num_stages,
                               bool lr_is_annealing)
    : cfg_(cfg),
      num_stages_(num_stages),
      lr_annealing_(lr_is_annealing),
      window_(std::max(2, cfg.window_w)) {
  EGERIA_CHECK(num_stages_ >= 2);
  stages_.resize(static_cast<size_t>(num_stages_));
  for (int i = 0; i < num_stages_; ++i) {
    ResetStageState(i);
  }
}

void FreezingPolicy::ResetStageState(int stage) {
  StageState& s = stages_[static_cast<size_t>(stage)];
  s.smoother = std::make_unique<MovingAverage>(static_cast<size_t>(window_));
  s.fitter = std::make_unique<WindowedLinearFit>(static_cast<size_t>(std::max(2, window_)));
  s.readings = 0;
  s.max_initial_slope = 0.0;
  s.tolerance = -1.0;
  s.stale_counter = 0;
  s.last_slope = 0.0;
}

double FreezingPolicy::ToleranceOf(int stage) const {
  return stages_[static_cast<size_t>(stage)].tolerance;
}

std::optional<FreezeDecision> FreezingPolicy::OnPlasticity(int stage, double plasticity,
                                                           float lr, int64_t iter) {
  (void)lr;
  if (stage != frontier_) {
    return std::nullopt;  // Stale evaluation from before a freeze/unfreeze; ignore.
  }
  if (frontier_ > MaxFreezable()) {
    return std::nullopt;  // Only the protected tail remains; nothing to do.
  }
  StageState& s = stages_[static_cast<size_t>(stage)];

  // Equation 2: moving-average smoothing, then windowed linear fit of the smoothed
  // series; the slope decides stationarity.
  const double smoothed = s.smoother->Add(plasticity);
  s.fitter->Add(smoothed);
  ++s.readings;
  const double slope = s.fitter->Fit().slope;
  s.last_slope = slope;

  if (s.readings <= 3) {
    // Per-module tolerance: 20% of the max |slope| among the first 3 readings.
    s.max_initial_slope = std::max(s.max_initial_slope, std::abs(slope));
    if (s.readings == 3) {
      s.tolerance = std::max(cfg_.tolerance_coef * s.max_initial_slope, kToleranceFloor);
    }
    return std::nullopt;
  }

  // "If the fitting line is close to horizontal" (Algorithm 1 line 10).
  if (std::abs(slope) < s.tolerance) {
    ++s.stale_counter;
  } else {
    s.stale_counter = 0;
  }

  if (s.stale_counter >= window_) {
    // Freeze this module and advance to the next active layer.
    if (!any_frozen_) {
      lr_at_first_freeze_ = lr;
      any_frozen_ = true;
    }
    FreezeDecision d;
    d.kind = FreezeDecision::Kind::kFreezeUpTo;
    d.stage = frontier_;
    d.iter = iter;
    ++frontier_;
    return d;
  }
  return std::nullopt;
}

std::optional<FreezeDecision> FreezingPolicy::OnLr(float lr, int64_t iter) {
  if (!any_frozen_) {
    return std::nullopt;
  }
  bool fire = false;
  if (lr_annealing_) {
    fire = lr <= cfg_.unfreeze_lr_factor * lr_at_first_freeze_;
  } else if (cyclical_hook_) {
    fire = cyclical_hook_(lr, iter);
  }
  if (!fire) {
    return std::nullopt;
  }
  // Unfreeze everything, halve the counter/history window, restart per-module state.
  frontier_ = 0;
  any_frozen_ = false;
  window_ = std::max(2, static_cast<int>(std::lround(
                            static_cast<double>(window_) * cfg_.refreeze_window_factor)));
  for (int i = 0; i < num_stages_; ++i) {
    ResetStageState(i);
  }
  FreezeDecision d;
  d.kind = FreezeDecision::Kind::kUnfreezeAll;
  d.stage = 0;
  d.iter = iter;
  return d;
}

}  // namespace egeria
