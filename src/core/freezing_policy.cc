#include "src/core/freezing_policy.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <utility>

#include "src/ckpt/wire.h"
#include "src/util/logging.h"

namespace egeria {

namespace {
// Tolerance floor so that modules whose plasticity is flat from the very first
// readings (max initial slope ~ 0) can still freeze.
constexpr double kToleranceFloor = 1e-7;
}  // namespace

FreezingPolicy::FreezingPolicy(const EgeriaConfig& cfg, int num_stages,
                               bool lr_is_annealing)
    : cfg_(cfg),
      num_stages_(num_stages),
      lr_annealing_(lr_is_annealing),
      window_(std::max(2, cfg.window_w)) {
  EGERIA_CHECK(num_stages_ >= 2);
  stages_.resize(static_cast<size_t>(num_stages_));
  for (int i = 0; i < num_stages_; ++i) {
    ResetStageState(i);
  }
}

void FreezingPolicy::ResetStageState(int stage) {
  StageState& s = stages_[static_cast<size_t>(stage)];
  s.smoother = std::make_unique<MovingAverage>(static_cast<size_t>(window_));
  s.fitter = std::make_unique<WindowedLinearFit>(static_cast<size_t>(std::max(2, window_)));
  s.readings = 0;
  s.max_initial_slope = 0.0;
  s.tolerance = -1.0;
  s.stale_counter = 0;
  s.last_slope = 0.0;
}

double FreezingPolicy::ToleranceOf(int stage) const {
  return stages_[static_cast<size_t>(stage)].tolerance;
}

std::optional<FreezeDecision> FreezingPolicy::OnPlasticity(int stage, double plasticity,
                                                           float lr, int64_t iter) {
  (void)lr;
  if (stage != frontier_) {
    return std::nullopt;  // Stale evaluation from before a freeze/unfreeze; ignore.
  }
  if (frontier_ > MaxFreezable()) {
    return std::nullopt;  // Only the protected tail remains; nothing to do.
  }
  StageState& s = stages_[static_cast<size_t>(stage)];

  // Equation 2: moving-average smoothing, then windowed linear fit of the smoothed
  // series; the slope decides stationarity.
  const double smoothed = s.smoother->Add(plasticity);
  s.fitter->Add(smoothed);
  ++s.readings;
  const double slope = s.fitter->Fit().slope;
  s.last_slope = slope;

  if (s.readings <= 3) {
    // Per-module tolerance: 20% of the max |slope| among the first 3 readings.
    s.max_initial_slope = std::max(s.max_initial_slope, std::abs(slope));
    if (s.readings == 3) {
      s.tolerance = std::max(cfg_.tolerance_coef * s.max_initial_slope, kToleranceFloor);
    }
    return std::nullopt;
  }

  // "If the fitting line is close to horizontal" (Algorithm 1 line 10).
  if (std::abs(slope) < s.tolerance) {
    ++s.stale_counter;
  } else {
    s.stale_counter = 0;
  }

  if (s.stale_counter >= window_) {
    // Freeze this module and advance to the next active layer.
    if (!any_frozen_) {
      lr_at_first_freeze_ = lr;
      any_frozen_ = true;
    }
    FreezeDecision d;
    d.kind = FreezeDecision::Kind::kFreezeUpTo;
    d.stage = frontier_;
    d.iter = iter;
    ++frontier_;
    return d;
  }
  return std::nullopt;
}

namespace {
constexpr uint32_t kPolicyMagic = 0x4F504745;  // 'EGPO'
constexpr uint32_t kPolicyVersion = 1;
}  // namespace

void FreezingPolicy::SaveState(std::ostream& os) const {
  wire::Write(os, kPolicyMagic);
  wire::Write(os, kPolicyVersion);
  wire::Write(os, static_cast<int32_t>(num_stages_));
  wire::Write(os, static_cast<int32_t>(window_));
  wire::Write(os, static_cast<int32_t>(frontier_));
  wire::Write(os, static_cast<uint8_t>(any_frozen_ ? 1 : 0));
  wire::Write(os, lr_at_first_freeze_);
  for (const StageState& s : stages_) {
    wire::Write(os, static_cast<uint64_t>(s.smoother->window()));
    wire::WriteDoubles(os, s.smoother->History());
    wire::Write(os, s.smoother->Sum());
    wire::Write(os, static_cast<uint64_t>(s.smoother->Count()));
    wire::WriteDoubles(os, s.fitter->History());
    wire::Write(os, static_cast<int32_t>(s.readings));
    wire::Write(os, s.max_initial_slope);
    wire::Write(os, s.tolerance);
    wire::Write(os, static_cast<int32_t>(s.stale_counter));
    wire::Write(os, s.last_slope);
  }
}

bool FreezingPolicy::LoadState(std::istream& is) {
  uint32_t magic = 0;
  uint32_t version = 0;
  int32_t num_stages = 0;
  int32_t window = 0;
  int32_t frontier = 0;
  uint8_t any_frozen = 0;
  float lr_at_first_freeze = 0.0F;
  if (!wire::Read(is, magic) || magic != kPolicyMagic || !wire::Read(is, version) ||
      version != kPolicyVersion || !wire::Read(is, num_stages) ||
      !wire::Read(is, window) || !wire::Read(is, frontier) ||
      !wire::Read(is, any_frozen) || !wire::Read(is, lr_at_first_freeze)) {
    EGERIA_LOG(kError) << "freezing-policy state: bad header";
    return false;
  }
  if (num_stages != num_stages_) {
    EGERIA_LOG(kError) << "freezing-policy state: saved for " << num_stages
                       << " stages, model has " << num_stages_;
    return false;
  }
  if (window < 2 || frontier < 0 || frontier > num_stages_) {
    EGERIA_LOG(kError) << "freezing-policy state: implausible window/frontier";
    return false;
  }
  std::vector<StageState> loaded(static_cast<size_t>(num_stages_));
  for (StageState& s : loaded) {
    uint64_t smoother_window = 0;
    std::deque<double> smoother_values;
    double smoother_sum = 0.0;
    uint64_t smoother_count = 0;
    std::deque<double> fitter_values;
    int32_t readings = 0;
    int32_t stale_counter = 0;
    if (!wire::Read(is, smoother_window) || smoother_window < 1 ||
        smoother_window > (1U << 20) ||
        !wire::ReadDoubles(is, smoother_values, smoother_window) ||
        !wire::Read(is, smoother_sum) || !wire::Read(is, smoother_count) ||
        !wire::ReadDoubles(is, fitter_values) || !wire::Read(is, readings) ||
        !wire::Read(is, s.max_initial_slope) || !wire::Read(is, s.tolerance) ||
        !wire::Read(is, stale_counter) || !wire::Read(is, s.last_slope)) {
      EGERIA_LOG(kError) << "freezing-policy state: truncated stage record";
      return false;
    }
    s.smoother = std::make_unique<MovingAverage>(static_cast<size_t>(smoother_window));
    s.smoother->Restore(std::move(smoother_values), smoother_sum,
                        static_cast<size_t>(smoother_count));
    // Every live fitter's window is max(2, policy window): stage state is
    // (re)constructed from window_ at every reset, so restoring with the saved
    // policy window is exact.
    s.fitter = std::make_unique<WindowedLinearFit>(
        static_cast<size_t>(std::max<int32_t>(2, window)));
    if (fitter_values.size() > static_cast<size_t>(std::max<int32_t>(2, window))) {
      EGERIA_LOG(kError) << "freezing-policy state: fitter history exceeds window";
      return false;
    }
    s.fitter->Restore(std::move(fitter_values));
    s.readings = readings;
    s.stale_counter = stale_counter;
  }
  stages_ = std::move(loaded);
  window_ = window;
  frontier_ = frontier;
  any_frozen_ = any_frozen != 0;
  lr_at_first_freeze_ = lr_at_first_freeze;
  return true;
}

std::optional<FreezeDecision> FreezingPolicy::OnLr(float lr, int64_t iter) {
  if (!any_frozen_) {
    return std::nullopt;
  }
  bool fire = false;
  if (lr_annealing_) {
    fire = lr <= cfg_.unfreeze_lr_factor * lr_at_first_freeze_;
  } else if (cyclical_hook_) {
    fire = cyclical_hook_(lr, iter);
  }
  if (!fire) {
    return std::nullopt;
  }
  // Unfreeze everything, halve the counter/history window, restart per-module state.
  frontier_ = 0;
  any_frozen_ = false;
  window_ = std::max(2, static_cast<int>(std::lround(
                            static_cast<double>(window_) * cfg_.refreeze_window_factor)));
  for (int i = 0; i < num_stages_; ++i) {
    ResetStageState(i);
  }
  FreezeDecision d;
  d.kind = FreezeDecision::Kind::kUnfreezeAll;
  d.stage = 0;
  d.iter = iter;
  return d;
}

}  // namespace egeria
