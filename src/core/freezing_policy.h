// Algorithm 1: the knowledge-guided layer freezing decision procedure.
//
// Per layer module the policy keeps the plasticity history; each evaluation is
// smoothed by a window-W moving average (Eq. 2), the smoothed series is fit with
// least-squares over the last W points, and a module freezes after W consecutive
// evaluations whose |slope| is below its tolerance T. T is auto-set per module to
// tolerance_coef x the max |slope| among the module's first 3 readings ("layers move
// differently and thus should have per-layer thresholds", S4.2.2).
//
// Unfreezing: with an annealing LR schedule, a drop to <= 10% of the LR recorded at
// the frontmost freeze unfreezes everything and halves W for refreezing. Cyclical
// schedules delegate to a user hook.
#ifndef EGERIA_SRC_CORE_FREEZING_POLICY_H_
#define EGERIA_SRC_CORE_FREEZING_POLICY_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <vector>

#include "src/core/config.h"
#include "src/util/stats.h"

namespace egeria {

struct FreezeDecision {
  enum class Kind { kFreezeUpTo, kUnfreezeAll };
  Kind kind = Kind::kFreezeUpTo;
  int stage = 0;       // kFreezeUpTo: freeze stages [0, stage]
  int64_t iter = 0;    // training iteration the decision was made at
};

class FreezingPolicy {
 public:
  FreezingPolicy(const EgeriaConfig& cfg, int num_stages, bool lr_is_annealing);

  // Feeds one plasticity reading for the current frontier module. Returns a decision
  // when one fires. `lr` is the learning rate at the evaluated iteration.
  std::optional<FreezeDecision> OnPlasticity(int stage, double plasticity, float lr,
                                             int64_t iter);

  // LR-based unfreeze check, callable every iteration (cheap). Returns kUnfreezeAll
  // when the annealing drop rule fires.
  std::optional<FreezeDecision> OnLr(float lr, int64_t iter);

  // Custom unfreeze criterion for cyclical schedules (paper: user-customizable).
  using CyclicalHook = std::function<bool(float lr, int64_t iter)>;
  void SetCyclicalHook(CyclicalHook hook) { cyclical_hook_ = std::move(hook); }

  int frontier() const { return frontier_; }
  int FrozenStages() const { return frontier_; }
  int window() const { return window_; }
  // Highest stage the policy may freeze (protects the tail module).
  int MaxFreezable() const { return num_stages_ - 1 - cfg_.protected_tail; }

  // Exposed for tests and the Fig. 12 sensitivity bench.
  double ToleranceOf(int stage) const;

  // Checkpoint support: the full decision state (per-stage smoothing/fit
  // histories with their incrementally-maintained sums, tolerances, stale
  // counters, the frontier, and the unfreeze bookkeeping). A policy restored
  // via LoadState produces bitwise-identical decisions to one that lived
  // through the readings. LoadState expects a policy constructed with the
  // same (cfg, num_stages, lr_is_annealing); returns false (and logs) on a
  // malformed or mismatched blob.
  void SaveState(std::ostream& os) const;
  bool LoadState(std::istream& is);

 private:
  void ResetStageState(int stage);

  EgeriaConfig cfg_;
  int num_stages_;
  bool lr_annealing_;
  int frontier_ = 0;  // frontmost active stage; stages < frontier are frozen
  int window_;

  struct StageState {
    std::unique_ptr<MovingAverage> smoother;
    std::unique_ptr<WindowedLinearFit> fitter;
    int readings = 0;
    double max_initial_slope = 0.0;
    double tolerance = -1.0;  // <0: not yet set
    int stale_counter = 0;
    double last_slope = 0.0;
  };
  std::vector<StageState> stages_;

  bool any_frozen_ = false;
  float lr_at_first_freeze_ = 0.0F;
  CyclicalHook cyclical_hook_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_FREEZING_POLICY_H_
