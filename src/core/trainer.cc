#include "src/core/trainer.h"

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "src/ckpt/state_dict.h"
#include "src/ckpt/wire.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/tensor/serialize.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace egeria {

namespace {

std::string DefaultCacheDir(uint64_t seed) {
  const auto base = std::filesystem::temp_directory_path() / "egeria_cache";
  return (base / std::to_string(::getpid() * 1000003ULL + seed)).string();
}

}  // namespace

Trainer::Trainer(ChainModel& model, const Dataset& train_data, const Dataset& val_data,
                 TrainConfig cfg)
    : model_(model),
      train_data_(train_data),
      val_data_(val_data),
      cfg_(std::move(cfg)),
      loader_(train_data_, cfg_.batch_size, /*shuffle=*/true, cfg_.seed,
              cfg_.train_samples_limit),
      val_loader_(val_data_, cfg_.batch_size, /*shuffle=*/false, cfg_.seed + 1) {
  EGERIA_CHECK_MSG(cfg_.lr_schedule != nullptr, "TrainConfig.lr_schedule is required");
  optimizer_ = MakeOptimizer();
  if (cfg_.enable_egeria) {
    controller_ = std::make_unique<EgeriaController>(cfg_.egeria, model_.NumStages(),
                                                     cfg_.lr_schedule->IsAnnealing());
    if (cfg_.egeria.enable_cache) {
      // Persistence policy: an explicit cache_dir is the caller opting into a
      // durable store; with checkpointing on, the store lives next to the
      // checkpoints so a crash/resume cycle re-adopts it (generation keys make
      // adoption safe). Only the anonymous per-pid temp dir is ephemeral.
      std::string dir = cfg_.egeria.cache_dir;
      bool persistent = !dir.empty();
      if (dir.empty() && cfg_.checkpoint.enabled()) {
        dir = cfg_.checkpoint.dir + "/feature_store";
        persistent = true;
      }
      if (dir.empty()) {
        dir = DefaultCacheDir(cfg_.seed);
      }
      cache_ = std::make_unique<ActivationCache>(
          dir, cfg_.egeria.cache_memory_batches * cfg_.batch_size,
          cfg_.egeria.cache_max_disk_bytes, persistent);
    }
  }
}

Trainer::~Trainer() = default;

std::unique_ptr<Optimizer> Trainer::MakeOptimizer() const {
  if (cfg_.optimizer == TrainConfig::Optim::kSgd) {
    return std::make_unique<Sgd>(cfg_.momentum, cfg_.weight_decay);
  }
  return std::make_unique<Adam>(0.9F, 0.999F, 1e-8F, cfg_.weight_decay);
}

int64_t Trainer::IterationsPerEpoch() const { return loader_.NumBatches(); }

int64_t Trainer::TotalIterations() const {
  return IterationsPerEpoch() * static_cast<int64_t>(cfg_.epochs);
}

Tensor Trainer::FrontierActivation() const { return model_.StageOutput(frontier_); }

uint64_t Trainer::FrozenPrefixHash() {
  uint64_t h = kFnv64Offset;
  for (int i = 0; i < frontier_; ++i) {
    for (Parameter* p : model_.StageParams(i)) {
      h = Fnv1a64(p->value.Data(),
                  static_cast<size_t>(p->value.NumEl()) * sizeof(float), h);
    }
  }
  return h;
}

uint64_t Trainer::CacheGeneration() const {
  const uint64_t gen = Fnv1a64(&aug_signature_, sizeof(aug_signature_), frozen_prefix_hash_);
  return gen == 0 ? 1 : gen;  // 0 is ActivationCache's legacy unkeyed mode.
}

void Trainer::FreezeUpTo(int stage, int64_t iter) {
  EGERIA_CHECK(stage >= 0 && stage < model_.NumStages() - 1);
  const int old_frontier = frontier_;
  bool sub_applied = cfg_.egeria.frozen_prefix_precision != Precision::kFloat32;
  for (int i = 0; i <= stage; ++i) {
    model_.SetStageFrozen(i, true);
    if (cfg_.egeria.frozen_prefix_precision != Precision::kFloat32) {
      // Frozen stages never see backward or updates again until an unfreeze,
      // so their forwards can run through the reduced-precision kernels (the
      // chain model keeps the clone until the precision is reset below).
      sub_applied = model_.SetStageForwardPrecision(i, cfg_.egeria.frozen_prefix_precision) &&
                    sub_applied;
    }
  }
  prefix_precision_ =
      sub_applied ? cfg_.egeria.frozen_prefix_precision : Precision::kFloat32;
  frontier_ = stage + 1;
  frozen_prefix_hash_ = FrozenPrefixHash();
  if (cfg_.release_frozen_optimizer_state && frontier_ > old_frontier) {
    // The newly frozen params are the prefix of the previously active list
    // that the new active list no longer contains.
    std::vector<Parameter*> was_active = model_.ParamsFrom(old_frontier);
    const size_t still_active = model_.ParamsFrom(frontier_).size();
    EGERIA_CHECK(was_active.size() >= still_active);
    was_active.resize(was_active.size() - still_active);
    optimizer_->ReleaseState(was_active);
  }
  if (frontier_observer_ && frontier_ != old_frontier) {
    frontier_observer_(old_frontier, frontier_, iter);
  }
  result_.freeze_events.push_back({iter, static_cast<int>(iter / IterationsPerEpoch()),
                                   /*unfreeze=*/false, frontier_});
  result_.frontier_timeline.emplace_back(iter, frontier_);
  if (cfg_.verbose) {
    EGERIA_LOG(kInfo) << "iter " << iter << ": froze stages [0," << stage
                      << "], frontier=" << frontier_;
  }
}

void Trainer::UnfreezeAll(int64_t iter) {
  const int old_frontier = frontier_;
  for (int i = 0; i < model_.NumStages(); ++i) {
    model_.SetStageFrozen(i, false);
    model_.SetStageForwardPrecision(i, Precision::kFloat32);
  }
  frontier_ = 0;
  frozen_prefix_hash_ = 0;
  prefix_precision_ = Precision::kFloat32;
  if (frontier_observer_ && old_frontier != 0) {
    frontier_observer_(old_frontier, 0, iter);
  }
  if (cache_ != nullptr) {
    cache_->Clear();  // Prefix weights will change; cached activations are stale.
  }
  result_.freeze_events.push_back({iter, static_cast<int>(iter / IterationsPerEpoch()),
                                   /*unfreeze=*/true, 0});
  result_.frontier_timeline.emplace_back(iter, 0);
  if (cfg_.verbose) {
    EGERIA_LOG(kInfo) << "iter " << iter << ": unfroze all layers";
  }
}

void Trainer::ApplyDecision(const FreezeDecision& d) {
  if (d.kind == FreezeDecision::Kind::kFreezeUpTo) {
    FreezeUpTo(d.stage, d.iter);
  } else {
    UnfreezeAll(d.iter);
  }
}

void Trainer::MaybeSubmitEval(const Batch& batch, float lr, int64_t iter) {
  if (controller_ == nullptr || !knowledge_stage_) {
    return;
  }
  if (iter % cfg_.egeria.eval_interval_n != 0) {
    return;
  }
  if (frontier_ >= model_.NumStages() - 1 - cfg_.egeria.protected_tail + 1) {
    return;  // Nothing left that may freeze.
  }
  EvalRequest req;
  req.batch = batch;
  req.train_act = model_.StageOutput(frontier_);
  req.stage = frontier_;
  req.lr = lr;
  req.iter = iter;
  if (controller_->SubmitEval(std::move(req))) {
    ++result_.evals_submitted;
  }
}

void Trainer::UpdateBootstrap(double loss, int64_t iter) {
  // Change rate of the window-averaged training loss, sampled every n iterations
  // (paper: permissively 10%). Entering the knowledge-guided stage triggers the
  // first reference snapshot.
  bootstrap_window_sum_ += loss;
  ++bootstrap_window_count_;
  if (cfg_.egeria.max_bootstrap_iters >= 0 && iter >= cfg_.egeria.max_bootstrap_iters) {
    knowledge_stage_ = true;
    result_.bootstrap_end_iter = iter;
    return;
  }
  if (iter % cfg_.egeria.eval_interval_n != 0) {
    return;
  }
  const double avg = bootstrap_window_sum_ / static_cast<double>(bootstrap_window_count_);
  bootstrap_window_sum_ = 0.0;
  bootstrap_window_count_ = 0;
  if (bootstrap_prev_avg_ > 0.0) {
    const double rate = std::abs(bootstrap_prev_avg_ - avg) / bootstrap_prev_avg_;
    if (rate < cfg_.egeria.bootstrap_change_rate) {
      knowledge_stage_ = true;
      result_.bootstrap_end_iter = iter;
      if (cfg_.verbose) {
        EGERIA_LOG(kInfo) << "bootstrapping stage ended at iter " << iter;
      }
    }
  }
  bootstrap_prev_avg_ = avg;
}

namespace {
constexpr uint32_t kTrainerStateMagic = 0x52544745;  // 'EGTR'
constexpr uint32_t kTrainerStateVersion = 1;
}  // namespace

void Trainer::SaveTrainingCheckpoint(int64_t iter) {
  obs::ScopedPhase ckpt_phase("ckpt", "trainer_save",
                              &obs::GetHistogram("ckpt.save_s"));
  CkptManifest m;
  m.kind = "trainer";
  m.iter = iter;
  m.world = 1;
  m.frontier = frontier_;
  m.next_frontier = frontier_;
  m.dir = CheckpointStepDir(cfg_.checkpoint.dir, iter);
  if (!EnsureDir(m.dir)) {
    return;
  }

  // Model state dict + optimizer state share one checkpoint file (the "#field"
  // optimizer keys cannot collide with state-dict names).
  Checkpoint state = ExportModelState(model_);
  std::vector<Parameter*> params;
  std::vector<std::string> names;
  auto named = NamedParams(model_);
  for (auto& [name, p] : named) {
    names.push_back(std::move(name));
    params.push_back(p);
  }
  optimizer_->ExportState(params, names, state);
  bool ok = SaveCheckpoint(m.dir + "/model.state", state) &&
            AddManifestFile(m, "model.state");

  {
    std::ofstream os(m.dir + "/trainer.state", std::ios::binary | std::ios::trunc);
    wire::Write(os, kTrainerStateMagic);
    wire::Write(os, kTrainerStateVersion);
    wire::Write(os, iter);
    wire::Write(os, static_cast<int32_t>(frontier_));
    wire::Write(os, static_cast<uint8_t>(knowledge_stage_ ? 1 : 0));
    wire::Write(os, bootstrap_prev_avg_);
    wire::Write(os, bootstrap_window_sum_);
    wire::Write(os, bootstrap_window_count_);
    wire::Write(os, result_.bootstrap_end_iter);
    ok = ok && static_cast<bool>(os);
  }
  ok = ok && AddManifestFile(m, "trainer.state");

  if (controller_ != nullptr) {
    {
      std::ofstream os(m.dir + "/controller.state", std::ios::binary | std::ios::trunc);
      controller_->SaveState(os);
      ok = ok && static_cast<bool>(os);
    }
    ok = ok && AddManifestFile(m, "controller.state");
  }

  if (!ok || !CommitManifest(m)) {
    EGERIA_LOG(kError) << "checkpoint at iter " << iter
                       << " failed; training continues uncheckpointed";
    return;
  }
  ApplyRetention(cfg_.checkpoint.dir, cfg_.checkpoint.keep_last);
  if (cfg_.verbose) {
    EGERIA_LOG(kInfo) << "checkpointed iter " << iter << " -> " << m.dir;
  }
}

int64_t Trainer::TryResume() {
  const auto m = FindLatestCheckpoint(cfg_.checkpoint.dir);
  if (!m) {
    return -1;
  }
  if (m->kind != "trainer") {
    EGERIA_LOG(kError) << m->dir << " is a '" << m->kind
                       << "' checkpoint; Trainer cannot resume from it";
    return -1;
  }
  Checkpoint state;
  if (!LoadCheckpoint(m->dir + "/model.state", state)) {
    // Nothing restored yet: a fresh start from scratch is still sound.
    return -1;
  }
  // From here on the restore mutates live state (model weights first), so a
  // failure must be fatal: returning -1 would silently train a "fresh" run
  // from half-restored weights. These paths only fire when the checkpoint
  // does not match the configured model/optimizer — an operator error worth
  // stopping on, not papering over.
  EGERIA_CHECK_MSG(LoadModelState(state, model_),
                   m->dir + ": checkpoint does not match this model architecture");
  std::vector<Parameter*> params;
  std::vector<std::string> names;
  auto named = NamedParams(model_);
  for (auto& [name, p] : named) {
    names.push_back(std::move(name));
    params.push_back(p);
  }
  EGERIA_CHECK_MSG(optimizer_->ImportState(params, names, state),
                   m->dir + ": optimizer state does not match this configuration");

  std::ifstream is(m->dir + "/trainer.state", std::ios::binary);
  uint32_t magic = 0;
  uint32_t version = 0;
  int64_t iter = 0;
  int32_t frontier = 0;
  uint8_t knowledge_stage = 0;
  EGERIA_CHECK_MSG(wire::Read(is, magic) && magic == kTrainerStateMagic &&
                       wire::Read(is, version) && version == kTrainerStateVersion &&
                       wire::Read(is, iter) && wire::Read(is, frontier) &&
                       wire::Read(is, knowledge_stage) &&
                       wire::Read(is, bootstrap_prev_avg_) &&
                       wire::Read(is, bootstrap_window_sum_) &&
                       wire::Read(is, bootstrap_window_count_) &&
                       wire::Read(is, result_.bootstrap_end_iter),
                   m->dir + ": malformed trainer.state");
  EGERIA_CHECK(iter == m->iter);
  EGERIA_CHECK(frontier >= 0 && frontier < model_.NumStages());
  knowledge_stage_ = knowledge_stage != 0;

  // Reapply the freeze frontier (and the frozen prefix's reduced-precision
  // forward substitution) exactly as FreezeUpTo left it.
  frontier_ = frontier;
  bool sub_applied =
      frontier_ > 0 && cfg_.egeria.frozen_prefix_precision != Precision::kFloat32;
  for (int i = 0; i < model_.NumStages(); ++i) {
    model_.SetStageFrozen(i, i < frontier_);
    if (i < frontier_ && cfg_.egeria.frozen_prefix_precision != Precision::kFloat32) {
      sub_applied = model_.SetStageForwardPrecision(i, cfg_.egeria.frozen_prefix_precision) &&
                    sub_applied;
    }
  }
  prefix_precision_ =
      sub_applied ? cfg_.egeria.frozen_prefix_precision : Precision::kFloat32;
  // Restored weights, same prefix => same hash as the interrupted run, so a
  // persistent feature store's manifest matches and its entries are adopted.
  frozen_prefix_hash_ = FrozenPrefixHash();

  if (controller_ != nullptr) {
    EGERIA_CHECK_MSG(m->HasFile("controller.state"),
                     m->dir + ": Egeria enabled but no controller state saved");
    std::ifstream cs(m->dir + "/controller.state", std::ios::binary);
    const bool restored = controller_->RestoreState(cs, [this] {
      InferenceFactory float_factory;
      return model_.CloneForInference(float_factory);
    });
    EGERIA_CHECK_MSG(restored, m->dir + ": controller state restore failed");
  }
  EGERIA_LOG(kInfo) << "resumed from " << m->dir << " (iter " << iter << ", frontier "
                    << frontier_ << ")";
  return iter;
}

TaskMetric Trainer::Validate() {
  model_.SetTraining(false);
  std::vector<TaskMetric> parts;
  const int64_t n = std::min<int64_t>(cfg_.val_batches, val_loader_.NumBatches());
  for (int64_t b = 0; b < n; ++b) {
    Batch batch = val_loader_.GetBatch(b);
    model_.SetBatch(batch);
    Tensor logits = model_.ForwardFrom(0, batch.input);
    parts.push_back(EvaluateTask(cfg_.task, logits, batch));
  }
  model_.SetTraining(true);
  return AggregateMetric(cfg_.task, parts);
}

TrainResult Trainer::Run() {
  result_ = TrainResult();
  model_.SetTraining(true);
  // Observability: tracing is env-gated (EGERIA_TRACE=1) so any binary built
  // on Trainer can be traced; the metrics registry is always on (atomic
  // updates, no allocation past the first lookup). Every phase below is
  // measured once via obs::ScopedPhase, which feeds the TrainResult seconds
  // field, the registry histogram, and the trace span from the same interval
  // — the three can never disagree (see src/obs/README.md).
  trace::InitFromEnv();
  trace::SetThreadName("trainer");
  obs::InstallDumpSignalHandler();
  obs::Histogram& data_hist = obs::GetHistogram("trainer.data_s");
  obs::Histogram& fp_hist = obs::GetHistogram("trainer.fp_s");
  obs::Histogram& bp_hist = obs::GetHistogram("trainer.bp_s");
  obs::Histogram& opt_hist = obs::GetHistogram("trainer.opt_s");
  obs::Histogram& cache_hist = obs::GetHistogram("trainer.cache_s");
  obs::Histogram& frozen_fp_hist = obs::GetHistogram("trainer.frozen_fp_s");
  obs::Counter& fp_skip_counter = obs::GetCounter("cache.fp_skips");
  obs::Counter& decline_counter = obs::GetCounter("cache.declined_iters");
  obs::Counter& iter_counter = obs::GetCounter("trainer.iterations");
  double cum_train_seconds = 0.0;
  int64_t iter = 0;
  // Without Egeria there is no bootstrap gate to pass.
  knowledge_stage_ = false;

  int start_epoch = 0;
  int64_t start_batch = 0;
  if (!cfg_.checkpoint.dir.empty() && cfg_.checkpoint.resume) {
    const int64_t resumed = TryResume();
    if (resumed >= 0) {
      iter = resumed;
      start_epoch = static_cast<int>(iter / IterationsPerEpoch());
      start_batch = iter % IterationsPerEpoch();
      result_.resumed_from_iter = resumed;
    }
  }
  bool stop = false;

  for (int epoch = start_epoch; epoch < cfg_.epochs && !stop; ++epoch) {
    loader_.StartEpoch(epoch);
    // Cacheability: the store may only serve an epoch whose sample stream is
    // epoch-deterministic. The dataset promises that by keeping its
    // augmentation signature constant across epochs; probing (epoch, epoch+1)
    // detects epoch-varying augmentation without run history, so the decision
    // is identical on a resumed run.
    aug_signature_ = train_data_.AugmentationSignature(epoch);
    store_cacheable_ = aug_signature_ == train_data_.AugmentationSignature(epoch + 1);
    double epoch_loss = 0.0;
    int64_t epoch_batches = 0;
    double epoch_frozen_fp_seconds = 0.0;
    int64_t epoch_fp_skips = 0;
    WallTimer epoch_timer;

    for (int64_t b = epoch == start_epoch ? start_batch : 0; b < loader_.NumBatches();
         ++b) {
      ++iter;
      const float lr = cfg_.lr_schedule->LrAt(iter);

      // --- Decision intake (Egeria) ---
      if (controller_ != nullptr) {
        if (!cfg_.egeria.async_controller) {
          controller_->RunPendingSync();
        }
        for (const FreezeDecision& d : controller_->DrainDecisions()) {
          ApplyDecision(d);
        }
        if (auto d = controller_->OnLr(lr, iter)) {
          ApplyDecision(*d);
        }
        if (knowledge_stage_ && controller_->WantsSnapshot()) {
          // Float snapshot (the paper's GPU->CPU copy); the controller quantizes it.
          InferenceFactory float_factory;
          controller_->SubmitSnapshot(model_.CloneForInference(float_factory));
        }
      }

      // --- Data ---
      obs::ScopedPhase data_phase("trainer", "data", &data_hist,
                                  &result_.data_seconds);
      Batch batch = loader_.GetBatch(b);
      data_phase.Stop();

      // --- Forward (with optional frozen-prefix skip) ---
      // When a frozen prefix exists and its boundary can seed ForwardFrom, the
      // forward is split into ForwardPrefix + ForwardFrom (bitwise identical to
      // the unsplit pass — same modules, same inputs, same order) so the time
      // spent inside the frozen prefix is measured separately whether the
      // feature store is on or off; the off/on difference is the
      // frozen_forward_saved_s bench metric. The store serves only when the
      // epoch stream is cacheable and the prefix is deterministic; otherwise it
      // declines and the prefix is recomputed.
      model_.SetBatch(batch);
      Tensor logits;
      bool skipped = false;
      // The fp phase covers the whole forward block, including the nested
      // cache and frozen-prefix intervals below — same semantics the bespoke
      // fp_seconds accumulator always had; the nested spans show up inside
      // the fp span on the trace timeline.
      obs::ScopedPhase fp_phase("trainer", "fp", &fp_hist, &result_.fp_seconds);
      const bool skippable_frontier =
          frontier_ > 0 && frontier_ <= model_.MaxForwardSkipStage();
      const bool serve = cache_ != nullptr && skippable_frontier && store_cacheable_ &&
                         model_.PrefixForwardDeterministic(frontier_);
      if (serve) {
        Tensor cached;
        {
          obs::ScopedPhase cache_phase("cache", "lookup", &cache_hist,
                                       &result_.cache_seconds);
          cache_->SetKey(frontier_ - 1, prefix_precision_, CacheGeneration());
          if (cache_->HasAll(batch.sample_ids)) {
            cached = cache_->FetchBatch(batch.sample_ids);
          }
        }
        if (cached.Defined()) {
          trace::AddInstant("cache", "fp_skip");
          fp_skip_counter.Add(1);
          logits = model_.ForwardFrom(frontier_, cached);
          skipped = true;
          ++result_.fp_skip_count;
          ++epoch_fp_skips;
        } else {
          double prefix_seconds = 0.0;
          {
            obs::ScopedPhase prefix_phase("trainer", "frozen_fp",
                                          &frozen_fp_hist, &prefix_seconds);
            Tensor boundary = model_.ForwardPrefix(frontier_ - 1, batch.input);
            prefix_phase.Stop();
            result_.frozen_fp_seconds += prefix_seconds;
            epoch_frozen_fp_seconds += prefix_seconds;
            logits = model_.ForwardFrom(frontier_, boundary);
            obs::ScopedPhase store_phase("cache", "store", &cache_hist,
                                         &result_.cache_seconds);
            cache_->StoreBatch(batch.sample_ids, boundary);
          }
        }
        {
          obs::ScopedPhase prefetch_phase("cache", "prefetch_submit",
                                          &cache_hist, &result_.cache_seconds);
          cache_->PrefetchAsync(
              loader_.UpcomingIndices(b + 1, cfg_.egeria.prefetch_batches));
        }
      } else if (skippable_frontier) {
        if (cache_ != nullptr) {
          trace::AddInstant("cache", "decline");
          decline_counter.Add(1);
          ++result_.cache_declined_iters;
        }
        double prefix_seconds = 0.0;
        {
          obs::ScopedPhase prefix_phase("trainer", "frozen_fp", &frozen_fp_hist,
                                        &prefix_seconds);
          Tensor boundary = model_.ForwardPrefix(frontier_ - 1, batch.input);
          prefix_phase.Stop();
          result_.frozen_fp_seconds += prefix_seconds;
          epoch_frozen_fp_seconds += prefix_seconds;
          logits = model_.ForwardFrom(frontier_, boundary);
        }
      } else {
        logits = model_.ForwardFrom(0, batch.input);
      }
      fp_phase.Stop();

      // --- Loss ---
      LossResult loss = TaskLoss(cfg_.task, logits, batch);
      epoch_loss += loss.loss;
      ++epoch_batches;

      // --- Plasticity evaluation submission (async, non-blocking) ---
      // Valid on cache-skipped iterations too: ForwardFrom(frontier, cached) still
      // computes the frontier stage, so StageOutput(frontier) is a genuine A_T.
      (void)skipped;
      MaybeSubmitEval(batch, lr, iter);

      // --- Backward + update (active stages only) ---
      {
        obs::ScopedPhase bp_phase("trainer", "bp", &bp_hist, &result_.bp_seconds);
        for (Parameter* p : model_.ParamsFrom(frontier_)) {
          p->grad.Zero_();
        }
        model_.BackwardTo(frontier_, loss.grad);
      }

      {
        obs::ScopedPhase opt_phase("trainer", "opt", &opt_hist,
                                   &result_.opt_seconds);
        optimizer_->Step(model_.ParamsFrom(frontier_), lr);
      }

      // --- Bootstrapping monitor ---
      if (controller_ != nullptr && !knowledge_stage_) {
        UpdateBootstrap(loss.loss, iter);
      }

      // --- Baseline hooks ---
      if (hook_ != nullptr) {
        hook_->OnIteration(*this, batch, iter);
      }
      ++result_.iterations;
      iter_counter.Add(1);
      obs::MaybeDumpOnSignal("trainer");

      // --- Checkpoint + crash-drill stop (end of iteration: weights, optimizer
      // state, and the controller's decision state are all consistent here) ---
      const bool at_interval =
          cfg_.checkpoint.enabled() && iter % cfg_.checkpoint.interval_iters == 0;
      if (at_interval) {
        SaveTrainingCheckpoint(iter);
      }
      if (cfg_.stop_after_iters >= 0 && iter >= cfg_.stop_after_iters) {
        if (cfg_.checkpoint.enabled() && !at_interval) {
          SaveTrainingCheckpoint(iter);
        }
        result_.stopped_early = true;
        stop = true;
        break;
      }
    }
    if (stop) {
      break;  // Partial epoch: no epoch stats, no validation.
    }

    const double epoch_seconds = epoch_timer.ElapsedSeconds();
    cum_train_seconds += epoch_seconds;

    EpochStats es;
    es.epoch = epoch;
    es.train_loss = epoch_loss / static_cast<double>(std::max<int64_t>(1, epoch_batches));
    es.val = Validate();
    es.train_seconds = epoch_seconds;
    es.cum_train_seconds = cum_train_seconds;
    es.frontier = frontier_;
    es.lr = cfg_.lr_schedule->LrAt(iter);
    es.frozen_fp_seconds = epoch_frozen_fp_seconds;
    es.fp_skips = epoch_fp_skips;
    result_.epochs.push_back(es);

    if (cfg_.verbose) {
      EGERIA_LOG(kInfo) << "epoch " << epoch << " loss=" << es.train_loss << " val("
                        << es.val.unit << ")=" << es.val.display
                        << " frontier=" << frontier_ << " t=" << cum_train_seconds << "s";
    }
    if (!result_.reached_target && es.val.score >= cfg_.target_score) {
      result_.reached_target = true;
      result_.tta_seconds = cum_train_seconds;
    }
    if (result_.epochs.size() == 1 || es.val.score > result_.best_metric.score) {
      result_.best_metric = es.val;
    }
  }

  result_.total_train_seconds = cum_train_seconds;
  result_.final_metric = result_.epochs.empty() ? TaskMetric{} : result_.epochs.back().val;
  result_.final_frontier = frontier_;
  if (controller_ != nullptr) {
    result_.plasticity = controller_->PlasticityHistory();
    result_.last_ref_quantize_seconds = controller_->LastQuantizeSeconds();
  }
  if (cache_ != nullptr) {
    result_.cache = cache_->Stats();
  }
  return result_;
}

}  // namespace egeria
