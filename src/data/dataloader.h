// Mini-batch loader with deterministic epoch shuffling and a look-ahead API.
//
// "Before an iteration, the data loader samples future mini-batches in advance ...
// unlike typical cache systems, we actually know the future" (paper S4.3). The
// activation prefetcher calls UpcomingIndices() to pull the sample ids of batches
// that have not been consumed yet and stage their cached activations.
#ifndef EGERIA_SRC_DATA_DATALOADER_H_
#define EGERIA_SRC_DATA_DATALOADER_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"

namespace egeria {

class DataLoader {
 public:
  DataLoader(const Dataset& dataset, int64_t batch_size, bool shuffle, uint64_t seed,
             int64_t limit_samples = -1);

  // Rebuilds the epoch permutation (deterministic in (seed, epoch)) and makes
  // `epoch` the one GetBatch fetches from (epoch-varying augmentation).
  void StartEpoch(int64_t epoch);

  int64_t NumBatches() const;
  int64_t batch_size() const { return batch_size_; }
  int64_t epoch() const { return epoch_; }

  // The dataset's augmentation signature for the current epoch (the frozen-
  // feature store's cacheability input; see Dataset::AugmentationSignature).
  uint64_t AugmentationSignature() const {
    return dataset_.AugmentationSignature(epoch_);
  }

  // Sample ids of batch `batch_idx` within the current epoch.
  std::vector<int64_t> BatchIndices(int64_t batch_idx) const;
  Batch GetBatch(int64_t batch_idx) const;

  // Sample ids of up to `count` upcoming batches starting at `next_batch` — the
  // prefetcher's window into the future.
  std::vector<int64_t> UpcomingIndices(int64_t next_batch, int64_t count) const;

 private:
  const Dataset& dataset_;
  int64_t batch_size_;
  bool shuffle_;
  uint64_t seed_;
  int64_t num_samples_;
  int64_t epoch_ = 0;
  std::vector<int64_t> order_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DATA_DATALOADER_H_
