#include "src/data/synthetic_seg.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace egeria {

SyntheticSegDataset::SyntheticSegDataset(const SyntheticSegConfig& cfg) : cfg_(cfg) {
  Rng rng = Rng::ForKey(cfg_.seed, 1ULL << 41);
  class_colors_.resize(static_cast<size_t>(cfg_.num_classes));
  for (auto& color : class_colors_) {
    color.resize(static_cast<size_t>(cfg_.channels));
    for (auto& v : color) {
      v = rng.NextUniform(-1.5F, 1.5F);
    }
  }
}

void SyntheticSegDataset::FillSample(int64_t index, float* img, int* labels) const {
  Rng rng = Rng::ForKey(cfg_.seed, static_cast<uint64_t>(index) + cfg_.sample_salt);
  const int64_t h = cfg_.height;
  const int64_t w = cfg_.width;
  // Background.
  for (int64_t i = 0; i < h * w; ++i) {
    labels[i] = 0;
  }
  for (int64_t c = 0; c < cfg_.channels; ++c) {
    const float base = class_colors_[0][static_cast<size_t>(c)];
    float* plane = img + c * h * w;
    for (int64_t i = 0; i < h * w; ++i) {
      plane[i] = base + cfg_.noise_std * rng.NextGaussian();
    }
  }
  // 1-3 rectangles of non-background classes.
  const int num_rects = 1 + static_cast<int>(rng.NextBelow(3));
  for (int r = 0; r < num_rects; ++r) {
    const int cls = 1 + static_cast<int>(rng.NextBelow(
                            static_cast<uint64_t>(cfg_.num_classes - 1)));
    const int64_t rw = 3 + static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(w / 2)));
    const int64_t rh = 3 + static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(h / 2)));
    const int64_t x0 = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(w - rw)));
    const int64_t y0 = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(h - rh)));
    for (int64_t y = y0; y < y0 + rh; ++y) {
      for (int64_t x = x0; x < x0 + rw; ++x) {
        labels[y * w + x] = cls;
        for (int64_t c = 0; c < cfg_.channels; ++c) {
          img[c * h * w + y * w + x] =
              class_colors_[static_cast<size_t>(cls)][static_cast<size_t>(c)] +
              cfg_.noise_std * rng.NextGaussian();
        }
      }
    }
  }
}

Batch SyntheticSegDataset::GetBatch(const std::vector<int64_t>& indices) const {
  Batch batch;
  const int64_t b = static_cast<int64_t>(indices.size());
  batch.input = Tensor({b, cfg_.channels, cfg_.height, cfg_.width});
  batch.labels.resize(static_cast<size_t>(b * cfg_.height * cfg_.width));
  batch.sample_ids = indices;
  const int64_t img_numel = cfg_.channels * cfg_.height * cfg_.width;
  const int64_t label_numel = cfg_.height * cfg_.width;
  for (int64_t i = 0; i < b; ++i) {
    EGERIA_CHECK(indices[static_cast<size_t>(i)] >= 0 &&
                 indices[static_cast<size_t>(i)] < Size());
    FillSample(indices[static_cast<size_t>(i)], batch.input.Data() + i * img_numel,
               batch.labels.data() + i * label_numel);
  }
  return batch;
}

}  // namespace egeria
