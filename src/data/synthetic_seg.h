// Synthetic dense-label segmentation dataset (stands in for PASCAL VOC).
// Images contain a textured background plus 1-3 axis-aligned rectangles with
// class-specific textures; labels are per-pixel class ids (0 = background).
#ifndef EGERIA_SRC_DATA_SYNTHETIC_SEG_H_
#define EGERIA_SRC_DATA_SYNTHETIC_SEG_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/tensor.h"

namespace egeria {

struct SyntheticSegConfig {
  int64_t num_classes = 5;  // including background class 0
  int64_t num_samples = 1024;
  int64_t channels = 3;
  int64_t height = 16;
  int64_t width = 16;
  float noise_std = 0.15F;
  uint64_t seed = 4321;
  uint64_t sample_salt = 0;  // see SyntheticImageConfig::sample_salt
};

class SyntheticSegDataset : public Dataset {
 public:
  explicit SyntheticSegDataset(const SyntheticSegConfig& cfg);

  int64_t Size() const override { return cfg_.num_samples; }
  Batch GetBatch(const std::vector<int64_t>& indices) const override;

  int64_t num_classes() const { return cfg_.num_classes; }

 private:
  void FillSample(int64_t index, float* img, int* labels) const;

  SyntheticSegConfig cfg_;
  std::vector<std::vector<float>> class_colors_;  // [class][channel] base intensity
};

}  // namespace egeria

#endif  // EGERIA_SRC_DATA_SYNTHETIC_SEG_H_
