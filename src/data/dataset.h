// Dataset interface. All datasets here are procedurally generated substitutes for the
// paper's corpora (ImageNet/CIFAR-10/VOC/WMT16/SQuAD are not available offline; see
// DESIGN.md S1). Determinism contract: GetBatch(indices) depends only on (seed,
// indices) — including augmentation — so a sample is bit-identical across epochs.
// That is the property the activation cache relies on (paper S4.3: stateless random
// augmentation keeps inputs repeatable).
#ifndef EGERIA_SRC_DATA_DATASET_H_
#define EGERIA_SRC_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "src/data/batch.h"

namespace egeria {

class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual int64_t Size() const = 0;
  virtual Batch GetBatch(const std::vector<int64_t>& indices) const = 0;

  // Epoch-aware fetch for datasets whose augmentation stream varies by epoch.
  // Contract: two GetBatchAt calls with equal (AugmentationSignature(epoch),
  // indices) return bitwise-identical samples. The default forwards to
  // GetBatch — epoch-independent data.
  virtual Batch GetBatchAt(int64_t epoch, const std::vector<int64_t>& indices) const {
    (void)epoch;
    return GetBatch(indices);
  }

  // Summarizes everything about epoch `epoch`'s augmentation that affects
  // sample content. A signature CONSTANT across epochs certifies the epoch-
  // determinism the frozen-feature store relies on (cached boundary
  // activations stay valid epoch to epoch); a varying signature tells the
  // store to decline. 0 (the default) = no augmentation / deterministic.
  virtual uint64_t AugmentationSignature(int64_t epoch) const {
    (void)epoch;
    return 0;
  }
};

}  // namespace egeria

#endif  // EGERIA_SRC_DATA_DATASET_H_
