#include "src/data/dataloader.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace egeria {

DataLoader::DataLoader(const Dataset& dataset, int64_t batch_size, bool shuffle,
                       uint64_t seed, int64_t limit_samples)
    : dataset_(dataset), batch_size_(batch_size), shuffle_(shuffle), seed_(seed) {
  EGERIA_CHECK(batch_size_ >= 1);
  num_samples_ = dataset_.Size();
  if (limit_samples > 0 && limit_samples < num_samples_) {
    num_samples_ = limit_samples;
  }
  EGERIA_CHECK(num_samples_ >= batch_size_);
  StartEpoch(0);
}

void DataLoader::StartEpoch(int64_t epoch) {
  epoch_ = epoch;
  order_.resize(static_cast<size_t>(num_samples_));
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) {
    Rng rng = Rng::ForKey(seed_, static_cast<uint64_t>(epoch) | (1ULL << 50));
    rng.Shuffle(order_);
  }
}

int64_t DataLoader::NumBatches() const { return num_samples_ / batch_size_; }

std::vector<int64_t> DataLoader::BatchIndices(int64_t batch_idx) const {
  EGERIA_CHECK(batch_idx >= 0 && batch_idx < NumBatches());
  const auto begin = order_.begin() + batch_idx * batch_size_;
  return std::vector<int64_t>(begin, begin + batch_size_);
}

Batch DataLoader::GetBatch(int64_t batch_idx) const {
  static obs::Counter& batches = obs::GetCounter("data.batches");
  batches.Add(1);
  if (!trace::Enabled()) {
    return dataset_.GetBatchAt(epoch_, BatchIndices(batch_idx));
  }
  // Low-prio: nests inside the trainer's "data" phase span, so per-batch
  // detail can drop under pressure without losing the phase total.
  const int64_t start_ns = trace::NowNs();
  Batch batch = dataset_.GetBatchAt(epoch_, BatchIndices(batch_idx));
  char args[64];
  std::snprintf(args, sizeof(args), "{\"epoch\":%lld,\"batch\":%lld}",
                static_cast<long long>(epoch_), static_cast<long long>(batch_idx));
  trace::AddCompleteLowPrio("data", "get_batch", start_ns,
                            trace::NowNs() - start_ns, args);
  return batch;
}

std::vector<int64_t> DataLoader::UpcomingIndices(int64_t next_batch, int64_t count) const {
  static obs::Counter& lookaheads = obs::GetCounter("data.lookahead_calls");
  lookaheads.Add(1);
  std::vector<int64_t> out;
  const int64_t last = std::min(NumBatches(), next_batch + count);
  for (int64_t b = std::max<int64_t>(0, next_batch); b < last; ++b) {
    const auto idx = BatchIndices(b);
    out.insert(out.end(), idx.begin(), idx.end());
  }
  return out;
}

}  // namespace egeria
