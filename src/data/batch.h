// A training mini-batch. Fields beyond `input`/`labels` are task-specific and left
// undefined when unused (e.g. `target_input` only exists for seq2seq batches).
#ifndef EGERIA_SRC_DATA_BATCH_H_
#define EGERIA_SRC_DATA_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

namespace egeria {

struct Batch {
  Tensor input;         // images [b,c,h,w] or source token ids [b,t]
  Tensor target_input;  // decoder input token ids [b,t] (machine translation)
  std::vector<int> labels;                  // class / per-pixel / per-token labels
  std::vector<std::pair<int, int>> spans;   // QA answer spans
  std::vector<int64_t> sample_ids;          // dataset indices; key the activation cache

  int64_t size() const { return input.Defined() ? input.Size(0) : 0; }
};

}  // namespace egeria

#endif  // EGERIA_SRC_DATA_BATCH_H_
