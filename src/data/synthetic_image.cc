#include "src/data/synthetic_image.h"

#include <cmath>

#include "src/tensor/serialize.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace egeria {

SyntheticImageDataset::SyntheticImageDataset(const SyntheticImageConfig& cfg) : cfg_(cfg) {
  prototypes_.reserve(static_cast<size_t>(cfg_.num_classes));
  for (int64_t cls = 0; cls < cfg_.num_classes; ++cls) {
    Rng rng = Rng::ForKey(cfg_.seed, static_cast<uint64_t>(cls) | (1ULL << 40));
    Tensor proto({cfg_.channels, cfg_.height, cfg_.width});
    // Sum of a few random sinusoids per channel yields smooth, class-distinct
    // structure with spatially local statistics (conv-learnable).
    for (int64_t c = 0; c < cfg_.channels; ++c) {
      float* plane = proto.Data() + c * cfg_.height * cfg_.width;
      for (int wave = 0; wave < 4; ++wave) {
        const float fx = rng.NextUniform(0.5F, 3.0F);
        const float fy = rng.NextUniform(0.5F, 3.0F);
        const float phase = rng.NextUniform(0.0F, 6.28318F);
        const float amp = rng.NextUniform(0.3F, 1.0F);
        for (int64_t y = 0; y < cfg_.height; ++y) {
          for (int64_t x = 0; x < cfg_.width; ++x) {
            const float u = static_cast<float>(x) / static_cast<float>(cfg_.width);
            const float v = static_cast<float>(y) / static_cast<float>(cfg_.height);
            plane[y * cfg_.width + x] +=
                amp * std::sin(6.28318F * (fx * u + fy * v) + phase);
          }
        }
      }
    }
    prototypes_.push_back(std::move(proto));
  }
}

void SyntheticImageDataset::FillSample(int64_t epoch, int64_t index, float* out) const {
  const int64_t cls = index % cfg_.num_classes;
  const Tensor& proto = prototypes_[static_cast<size_t>(cls)];
  // Epoch-stable by default; with epoch_varying_augment the per-sample draw is
  // additionally keyed by epoch (a distinct high-bit lane so epoch 0 does not
  // collide with the epoch-stable stream of some other index).
  uint64_t key = static_cast<uint64_t>(index) + cfg_.sample_salt;
  if (cfg_.epoch_varying_augment) {
    key += (static_cast<uint64_t>(epoch) + 1) << 44;
  }
  Rng rng = Rng::ForKey(cfg_.seed, key);

  const bool flip = cfg_.augment && rng.NextBool();
  const int64_t shift_x = cfg_.augment ? static_cast<int64_t>(rng.NextBelow(5)) - 2 : 0;
  const int64_t shift_y = cfg_.augment ? static_cast<int64_t>(rng.NextBelow(5)) - 2 : 0;
  const float amp = cfg_.augment ? rng.NextUniform(0.8F, 1.2F) : 1.0F;

  const int64_t h = cfg_.height;
  const int64_t w = cfg_.width;
  for (int64_t c = 0; c < cfg_.channels; ++c) {
    const float* plane = proto.Data() + c * h * w;
    float* dst = out + c * h * w;
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        int64_t sx = (x + shift_x + w) % w;
        const int64_t sy = (y + shift_y + h) % h;
        if (flip) {
          sx = w - 1 - sx;
        }
        dst[y * w + x] = amp * plane[sy * w + sx] + cfg_.noise_std * rng.NextGaussian();
      }
    }
  }
}

Batch SyntheticImageDataset::GetBatch(const std::vector<int64_t>& indices) const {
  return GetBatchAt(0, indices);
}

Batch SyntheticImageDataset::GetBatchAt(int64_t epoch,
                                        const std::vector<int64_t>& indices) const {
  Batch batch;
  const int64_t b = static_cast<int64_t>(indices.size());
  batch.input = Tensor({b, cfg_.channels, cfg_.height, cfg_.width});
  batch.labels.reserve(static_cast<size_t>(b));
  batch.sample_ids = indices;
  const int64_t sample_numel = cfg_.channels * cfg_.height * cfg_.width;
  for (int64_t i = 0; i < b; ++i) {
    EGERIA_CHECK(indices[static_cast<size_t>(i)] >= 0 &&
                 indices[static_cast<size_t>(i)] < Size());
    FillSample(epoch, indices[static_cast<size_t>(i)],
               batch.input.Data() + i * sample_numel);
    batch.labels.push_back(LabelOf(indices[static_cast<size_t>(i)]));
  }
  return batch;
}

uint64_t SyntheticImageDataset::AugmentationSignature(int64_t epoch) const {
  if (!cfg_.epoch_varying_augment) {
    return 0;  // Epoch-stable stream (deterministic augmentation included).
  }
  const uint64_t key[2] = {cfg_.seed, static_cast<uint64_t>(epoch)};
  const uint64_t sig = Fnv1a64(key, sizeof(key));
  return sig == 0 ? 1 : sig;  // 0 is reserved for "epoch-stable".
}

}  // namespace egeria
