// Class-conditional synthetic image dataset (stands in for CIFAR-10 / ImageNet).
//
// Each class has a smooth prototype pattern (sum of random 2-d sinusoids per
// channel); samples are the prototype under a deterministic per-sample augmentation
// (horizontal flip, circular shift, amplitude jitter) plus Gaussian pixel noise. CNNs
// learn it the way they learn natural images: front layers pick up generic structure
// quickly, deep layers separate classes — which is the convergence ordering Egeria's
// freezing exploits.
#ifndef EGERIA_SRC_DATA_SYNTHETIC_IMAGE_H_
#define EGERIA_SRC_DATA_SYNTHETIC_IMAGE_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/tensor.h"

namespace egeria {

struct SyntheticImageConfig {
  int64_t num_classes = 10;
  int64_t num_samples = 2048;
  int64_t channels = 3;
  int64_t height = 16;
  int64_t width = 16;
  float noise_std = 0.25F;
  bool augment = true;
  // Re-draws each sample's augmentation (and noise) per epoch, like a live
  // augmentation pipeline. Samples are then deterministic in (seed, epoch,
  // index) rather than (seed, index), so AugmentationSignature varies per
  // epoch and the frozen-feature store declines to serve across epochs.
  bool epoch_varying_augment = false;
  uint64_t seed = 1234;
  // Distinguishes sample streams that share class prototypes: train and validation
  // sets use the same `seed` (same classes) but different salts (different samples).
  uint64_t sample_salt = 0;
};

class SyntheticImageDataset : public Dataset {
 public:
  explicit SyntheticImageDataset(const SyntheticImageConfig& cfg);

  int64_t Size() const override { return cfg_.num_samples; }
  Batch GetBatch(const std::vector<int64_t>& indices) const override;
  Batch GetBatchAt(int64_t epoch, const std::vector<int64_t>& indices) const override;
  uint64_t AugmentationSignature(int64_t epoch) const override;

  int64_t num_classes() const { return cfg_.num_classes; }
  int LabelOf(int64_t index) const {
    return static_cast<int>(index % cfg_.num_classes);
  }

 private:
  void FillSample(int64_t epoch, int64_t index, float* out) const;

  SyntheticImageConfig cfg_;
  std::vector<Tensor> prototypes_;  // one [c,h,w] pattern per class
};

}  // namespace egeria

#endif  // EGERIA_SRC_DATA_SYNTHETIC_IMAGE_H_
