// Synthetic sequence tasks.
//
// SyntheticTranslationDataset (stands in for WMT16 EN-DE): the target is the source
// reversed and passed through a fixed vocabulary permutation. Learning it requires
// cross-attention alignment (position reversal) plus a token mapping — the same
// mechanics as translation, at CPU scale.
//
// SyntheticQaDataset (stands in for SQuAD 1.0): a context of random tokens carries a
// marked answer span (delimited by marker tokens); the model predicts the span's
// start/end. Exercises the BERT fine-tuning path (span head, linear LR decay).
#ifndef EGERIA_SRC_DATA_SYNTHETIC_TEXT_H_
#define EGERIA_SRC_DATA_SYNTHETIC_TEXT_H_

#include <vector>

#include "src/data/dataset.h"

namespace egeria {

inline constexpr int kPadToken = 0;
inline constexpr int kBosToken = 1;
inline constexpr int kMarkToken = 2;      // QA span delimiter
inline constexpr int kFirstContentToken = 3;

struct SyntheticTranslationConfig {
  int64_t vocab = 64;
  int64_t seq_len = 12;
  int64_t num_samples = 2048;
  uint64_t seed = 777;
  uint64_t sample_salt = 0;  // see SyntheticImageConfig::sample_salt
};

class SyntheticTranslationDataset : public Dataset {
 public:
  explicit SyntheticTranslationDataset(const SyntheticTranslationConfig& cfg);

  const SyntheticTranslationConfig& config() const { return cfg_; }

  int64_t Size() const override { return cfg_.num_samples; }
  // Batch: input = source ids [b,t]; target_input = [BOS, tgt[0..t-2]] [b,t];
  // labels = tgt flattened (b*t).
  Batch GetBatch(const std::vector<int64_t>& indices) const override;

 private:
  SyntheticTranslationConfig cfg_;
  std::vector<int> token_perm_;  // content-token permutation
};

struct SyntheticQaConfig {
  int64_t vocab = 64;
  int64_t seq_len = 24;
  int64_t num_samples = 2048;
  uint64_t seed = 888;
  uint64_t sample_salt = 0;
};

class SyntheticQaDataset : public Dataset {
 public:
  explicit SyntheticQaDataset(const SyntheticQaConfig& cfg);

  int64_t Size() const override { return cfg_.num_samples; }
  // Batch: input = context ids [b,t]; spans = gold (start, end) per sample.
  Batch GetBatch(const std::vector<int64_t>& indices) const override;

 private:
  SyntheticQaConfig cfg_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DATA_SYNTHETIC_TEXT_H_
