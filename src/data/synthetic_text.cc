#include "src/data/synthetic_text.h"

#include <numeric>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace egeria {

SyntheticTranslationDataset::SyntheticTranslationDataset(
    const SyntheticTranslationConfig& cfg)
    : cfg_(cfg) {
  EGERIA_CHECK(cfg_.vocab > kFirstContentToken + 1);
  const int content = static_cast<int>(cfg_.vocab) - kFirstContentToken;
  token_perm_.resize(static_cast<size_t>(content));
  std::iota(token_perm_.begin(), token_perm_.end(), 0);
  Rng rng = Rng::ForKey(cfg_.seed, 1ULL << 42);
  rng.Shuffle(token_perm_);
}

Batch SyntheticTranslationDataset::GetBatch(const std::vector<int64_t>& indices) const {
  Batch batch;
  const int64_t b = static_cast<int64_t>(indices.size());
  const int64_t t = cfg_.seq_len;
  batch.input = Tensor({b, t});
  batch.target_input = Tensor({b, t});
  batch.labels.resize(static_cast<size_t>(b * t));
  batch.sample_ids = indices;
  const int content = static_cast<int>(cfg_.vocab) - kFirstContentToken;
  for (int64_t i = 0; i < b; ++i) {
    EGERIA_CHECK(indices[static_cast<size_t>(i)] >= 0 &&
                 indices[static_cast<size_t>(i)] < Size());
    Rng rng = Rng::ForKey(cfg_.seed, static_cast<uint64_t>(indices[static_cast<size_t>(i)]) + cfg_.sample_salt);
    std::vector<int> src(static_cast<size_t>(t));
    for (int64_t j = 0; j < t; ++j) {
      src[static_cast<size_t>(j)] =
          kFirstContentToken + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(content)));
      batch.input.At(i, j) = static_cast<float>(src[static_cast<size_t>(j)]);
    }
    // Target: reversed source under the fixed vocabulary permutation.
    std::vector<int> tgt(static_cast<size_t>(t));
    for (int64_t j = 0; j < t; ++j) {
      const int s = src[static_cast<size_t>(t - 1 - j)] - kFirstContentToken;
      tgt[static_cast<size_t>(j)] = kFirstContentToken + token_perm_[static_cast<size_t>(s)];
    }
    batch.target_input.At(i, 0) = static_cast<float>(kBosToken);
    for (int64_t j = 1; j < t; ++j) {
      batch.target_input.At(i, j) = static_cast<float>(tgt[static_cast<size_t>(j - 1)]);
    }
    for (int64_t j = 0; j < t; ++j) {
      batch.labels[static_cast<size_t>(i * t + j)] = tgt[static_cast<size_t>(j)];
    }
  }
  return batch;
}

SyntheticQaDataset::SyntheticQaDataset(const SyntheticQaConfig& cfg) : cfg_(cfg) {
  EGERIA_CHECK(cfg_.vocab > kFirstContentToken + 1);
  EGERIA_CHECK(cfg_.seq_len >= 8);
}

Batch SyntheticQaDataset::GetBatch(const std::vector<int64_t>& indices) const {
  Batch batch;
  const int64_t b = static_cast<int64_t>(indices.size());
  const int64_t t = cfg_.seq_len;
  batch.input = Tensor({b, t});
  batch.spans.resize(static_cast<size_t>(b));
  batch.sample_ids = indices;
  const int content = static_cast<int>(cfg_.vocab) - kFirstContentToken;
  for (int64_t i = 0; i < b; ++i) {
    EGERIA_CHECK(indices[static_cast<size_t>(i)] >= 0 &&
                 indices[static_cast<size_t>(i)] < Size());
    Rng rng = Rng::ForKey(cfg_.seed, static_cast<uint64_t>(indices[static_cast<size_t>(i)]) + cfg_.sample_salt);
    for (int64_t j = 0; j < t; ++j) {
      batch.input.At(i, j) = static_cast<float>(
          kFirstContentToken + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(content))));
    }
    // Answer span delimited by marker tokens: [mark] answer... [mark].
    const int64_t span_len = 1 + static_cast<int64_t>(rng.NextBelow(3));
    const int64_t start =
        1 + static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(t - span_len - 2)));
    batch.input.At(i, start - 1) = static_cast<float>(kMarkToken);
    batch.input.At(i, start + span_len) = static_cast<float>(kMarkToken);
    batch.spans[static_cast<size_t>(i)] = {static_cast<int>(start),
                                           static_cast<int>(start + span_len - 1)};
  }
  return batch;
}

}  // namespace egeria
