#include "src/optim/optimizer.h"

#include <cmath>
#include <utility>

#include "src/util/logging.h"

namespace egeria {

void SgdUpdateRange(float* w, const float* g, float* v, int64_t n, float lr,
                    float momentum, float weight_decay) {
  for (int64_t i = 0; i < n; ++i) {
    const float grad = g[i] + weight_decay * w[i];
    v[i] = momentum * v[i] + grad;
    w[i] -= lr * v[i];
  }
}

void SgdUpdateRangeNoMomentum(float* w, const float* g, int64_t n, float lr,
                              float weight_decay) {
  for (int64_t i = 0; i < n; ++i) {
    w[i] -= lr * (g[i] + weight_decay * w[i]);
  }
}

Sgd::Sgd(float momentum, float weight_decay)
    : momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::Step(const std::vector<Parameter*>& params, float lr) {
  for (Parameter* p : params) {
    const int64_t n = p->value.NumEl();
    float* w = p->value.Data();
    const float* g = p->grad.Data();
    if (momentum_ == 0.0F) {
      SgdUpdateRangeNoMomentum(w, g, n, lr, weight_decay_);
      continue;
    }
    auto it = velocity_.find(p);
    if (it == velocity_.end()) {
      it = velocity_.emplace(p, Tensor::Zeros(p->value.Shape())).first;
    }
    SgdUpdateRange(w, g, it->second.Data(), n, lr, momentum_, weight_decay_);
  }
}

void Sgd::ReleaseState(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    velocity_.erase(p);
  }
}

int64_t Sgd::StateBytes() const {
  int64_t bytes = 0;
  for (const auto& kv : velocity_) {
    bytes += kv.second.NumEl() * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

void Sgd::ExportState(const std::vector<Parameter*>& params,
                      const std::vector<std::string>& names, Checkpoint& out) const {
  EGERIA_CHECK(params.size() == names.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const auto it = velocity_.find(params[i]);
    if (it != velocity_.end()) {
      out.emplace(names[i] + "#v", it->second.Clone());
    }
  }
}

bool Sgd::ImportState(const std::vector<Parameter*>& params,
                      const std::vector<std::string>& names, const Checkpoint& in) {
  EGERIA_CHECK(params.size() == names.size());
  for (size_t i = 0; i < params.size(); ++i) {
    velocity_.erase(params[i]);
    const auto it = in.find(names[i] + "#v");
    if (it == in.end()) {
      continue;  // No saved state: matches a released / never-stepped param.
    }
    if (it->second.NumEl() != params[i]->value.NumEl()) {
      EGERIA_LOG(kError) << "sgd state " << names[i] << " has " << it->second.NumEl()
                         << " elements, parameter has " << params[i]->value.NumEl();
      return false;
    }
    velocity_.emplace(params[i], it->second.Clone());
  }
  return true;
}

Adam::Adam(float beta1, float beta2, float eps, float weight_decay)
    : beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

void Adam::Step(const std::vector<Parameter*>& params, float lr) {
  for (Parameter* p : params) {
    auto it = state_.find(p);
    if (it == state_.end()) {
      State s;
      s.m = Tensor::Zeros(p->value.Shape());
      s.v = Tensor::Zeros(p->value.Shape());
      it = state_.emplace(p, std::move(s)).first;
    }
    State& s = it->second;
    ++s.t;
    const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(s.t));
    const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(s.t));
    const int64_t n = p->value.NumEl();
    float* w = p->value.Data();
    const float* g = p->grad.Data();
    float* m = s.m.Data();
    float* v = s.v.Data();
    for (int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0F - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0F - beta2_) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ReleaseState(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    state_.erase(p);
  }
}

int64_t Adam::StateBytes() const {
  int64_t bytes = 0;
  for (const auto& kv : state_) {
    bytes += (kv.second.m.NumEl() + kv.second.v.NumEl()) *
             static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

void Adam::ExportState(const std::vector<Parameter*>& params,
                       const std::vector<std::string>& names, Checkpoint& out) const {
  EGERIA_CHECK(params.size() == names.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const auto it = state_.find(params[i]);
    if (it == state_.end()) {
      continue;
    }
    out.emplace(names[i] + "#m", it->second.m.Clone());
    out.emplace(names[i] + "#v", it->second.v.Clone());
    // The step counter as a 1-element tensor; float is exact below 2^24 steps,
    // far beyond any run in this repo.
    out.emplace(names[i] + "#t",
                Tensor::Full({1}, static_cast<float>(it->second.t)));
  }
}

bool Adam::ImportState(const std::vector<Parameter*>& params,
                       const std::vector<std::string>& names, const Checkpoint& in) {
  EGERIA_CHECK(params.size() == names.size());
  for (size_t i = 0; i < params.size(); ++i) {
    state_.erase(params[i]);
    const auto m_it = in.find(names[i] + "#m");
    const auto v_it = in.find(names[i] + "#v");
    const auto t_it = in.find(names[i] + "#t");
    if (m_it == in.end() && v_it == in.end() && t_it == in.end()) {
      continue;
    }
    if (m_it == in.end() || v_it == in.end() || t_it == in.end() ||
        m_it->second.NumEl() != params[i]->value.NumEl() ||
        v_it->second.NumEl() != params[i]->value.NumEl() ||
        t_it->second.NumEl() != 1) {
      EGERIA_LOG(kError) << "adam state " << names[i] << " is incomplete or misshapen";
      return false;
    }
    State s;
    s.m = m_it->second.Clone();
    s.v = v_it->second.Clone();
    s.t = static_cast<int64_t>(t_it->second.At(int64_t{0}));
    state_.emplace(params[i], std::move(s));
  }
  return true;
}

}  // namespace egeria
