#include "src/optim/optimizer.h"

#include <cmath>

#include "src/util/logging.h"

namespace egeria {

void SgdUpdateRange(float* w, const float* g, float* v, int64_t n, float lr,
                    float momentum, float weight_decay) {
  for (int64_t i = 0; i < n; ++i) {
    const float grad = g[i] + weight_decay * w[i];
    v[i] = momentum * v[i] + grad;
    w[i] -= lr * v[i];
  }
}

void SgdUpdateRangeNoMomentum(float* w, const float* g, int64_t n, float lr,
                              float weight_decay) {
  for (int64_t i = 0; i < n; ++i) {
    w[i] -= lr * (g[i] + weight_decay * w[i]);
  }
}

Sgd::Sgd(float momentum, float weight_decay)
    : momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::Step(const std::vector<Parameter*>& params, float lr) {
  for (Parameter* p : params) {
    const int64_t n = p->value.NumEl();
    float* w = p->value.Data();
    const float* g = p->grad.Data();
    if (momentum_ == 0.0F) {
      SgdUpdateRangeNoMomentum(w, g, n, lr, weight_decay_);
      continue;
    }
    auto it = velocity_.find(p);
    if (it == velocity_.end()) {
      it = velocity_.emplace(p, Tensor::Zeros(p->value.Shape())).first;
    }
    SgdUpdateRange(w, g, it->second.Data(), n, lr, momentum_, weight_decay_);
  }
}

void Sgd::ReleaseState(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    velocity_.erase(p);
  }
}

int64_t Sgd::StateBytes() const {
  int64_t bytes = 0;
  for (const auto& kv : velocity_) {
    bytes += kv.second.NumEl() * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

Adam::Adam(float beta1, float beta2, float eps, float weight_decay)
    : beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

void Adam::Step(const std::vector<Parameter*>& params, float lr) {
  for (Parameter* p : params) {
    auto it = state_.find(p);
    if (it == state_.end()) {
      State s;
      s.m = Tensor::Zeros(p->value.Shape());
      s.v = Tensor::Zeros(p->value.Shape());
      it = state_.emplace(p, std::move(s)).first;
    }
    State& s = it->second;
    ++s.t;
    const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(s.t));
    const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(s.t));
    const int64_t n = p->value.NumEl();
    float* w = p->value.Data();
    const float* g = p->grad.Data();
    float* m = s.m.Data();
    float* v = s.v.Data();
    for (int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0F - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0F - beta2_) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ReleaseState(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    state_.erase(p);
  }
}

int64_t Adam::StateBytes() const {
  int64_t bytes = 0;
  for (const auto& kv : state_) {
    bytes += (kv.second.m.NumEl() + kv.second.v.NumEl()) *
             static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

}  // namespace egeria
