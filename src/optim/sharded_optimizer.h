// ZeRO-1-style sharded optimizer state for the data-parallel harness.
//
// Each rank owns one reduction-contract chunk of the flattened ACTIVE-parameter
// space and keeps momentum only for that shard, so per-rank optimizer memory is
// ~1/world of the replicated baseline and shrinks further as Egeria freezes
// stages: the freeze frontier re-partitions shards over the surviving suffix,
// migrates momentum for still-active elements to their new owners, and drops
// the frozen prefix's state entirely.
//
// ShardedSgd is ONE rank's shard. Reshard is a collective over the rank's
// Transport: every rank circulates its old velocity shard around the ring (the
// old partition is derivable by every rank from the shared previous
// (frozen, active) pair, so all frame sizes are known a priori) and each rank
// keeps the slices that overlap its new shard — the same migration the
// original shared-memory implementation did by reading peers' vectors, now
// expressed as messages so it works across process boundaries.
//
// The update arithmetic is elementwise-identical to Sgd::Step (the same
// compiled SgdUpdateRange kernels), so a sharded run is bitwise-identical to
// the replicated reference path as long as gradients arrive through the same
// reduction contract. The one documented divergence: parameters re-activated
// by an unfreeze restart with zero momentum (their state was dropped at freeze
// time), whereas the replicated Sgd keeps stale velocity across freeze cycles.
#ifndef EGERIA_SRC_OPTIM_SHARDED_OPTIMIZER_H_
#define EGERIA_SRC_OPTIM_SHARDED_OPTIMIZER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/distributed/flat_view.h"
#include "src/distributed/transport/transport.h"

namespace egeria {

class ShardedSgd {
 public:
  ShardedSgd(float momentum, float weight_decay);

  // Collective: partition the active suffix [frozen_elems, frozen_elems +
  // active_elems) of the global flat parameter space into World() contract
  // chunks, migrating momentum between owners over the transport (elements
  // that were frozen or never owned start at zero). Every rank must call this
  // at the same logical step with identical arguments. On ok, `shard`
  // (nullable) receives this rank's shard [begin, end) in ACTIVE-space
  // coordinates (offsets into a FlatParamView over the active parameter
  // list). On a transport error the optimizer state is left UNCHANGED (the
  // old partition still applies) so a recovering caller can retry or unwind.
  TransportStatus Reshard(Transport& transport, int64_t frozen_elems,
                          int64_t active_elems,
                          std::pair<int64_t, int64_t>* shard);

  // Local: momentum-SGD update on active-space range [begin, end), which must
  // lie within this rank's current shard. Arithmetic matches Sgd::Step bitwise.
  void Step(FlatParamView& values, const FlatParamView& grads, int64_t begin,
            int64_t end, float lr);

  // Resident optimizer-state bytes (this rank's velocity shard).
  int64_t StateBytes() const;

  // ---- Checkpoint support ----
  // One rank's shard as persisted by a checkpoint: the (frozen, active)
  // partition it was taken under plus the velocity slice in GLOBAL flat
  // coordinates.
  struct ShardState {
    int64_t frozen_elems = 0;
    int64_t active_elems = 0;
    int64_t global_begin = 0;
    int64_t global_end = 0;
    std::vector<float> velocity;
  };
  ShardState ExportShard() const;

  // Local (transport-free) restore: seeds this rank's shard for `rank` of
  // `world` over the saved (frozen_elems, active_elems) partition by
  // re-folding the saved shards through the reduction-contract partition —
  // the new span is computed locally and every overlapping slice of `saved`
  // is copied in. `saved` may come from a run with a DIFFERENT world size
  // (elastic restart); every velocity element's value is preserved because
  // ownership, not content, is what the partition changes. Elements covered
  // by no saved shard start at zero. Also primes the previous-partition pair
  // so the next freeze-driven Reshard migrates exactly as an uninterrupted
  // run would. Returns the shard bounds in ACTIVE-space coordinates, like
  // Reshard.
  std::pair<int64_t, int64_t> RestoreShard(int rank, int world, int64_t frozen_elems,
                                           int64_t active_elems,
                                           const std::vector<ShardState>& saved);

 private:
  float momentum_;
  float weight_decay_;
  std::vector<float> velocity_;  // indexed by global_offset - global_begin_
  int64_t global_begin_ = 0;
  int64_t global_end_ = 0;
  int64_t frozen_elems_ = 0;
  // The partition every rank agreed on at the previous Reshard; -1 = none yet.
  // Lets each rank reconstruct all peers' old shard bounds without metadata
  // exchange during migration.
  int64_t prev_frozen_ = -1;
  int64_t prev_active_ = -1;
};

}  // namespace egeria

#endif  // EGERIA_SRC_OPTIM_SHARDED_OPTIMIZER_H_
