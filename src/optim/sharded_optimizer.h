// ZeRO-1-style sharded optimizer state for the data-parallel harness.
//
// Each rank owns one reduction-contract chunk of the flattened ACTIVE-parameter
// space and keeps momentum only for that shard, so per-rank optimizer memory is
// ~1/world of the replicated baseline and shrinks further as Egeria freezes
// stages: the freeze frontier re-partitions shards over the surviving suffix,
// migrates momentum for still-active elements to their new owners, and drops
// the frozen prefix's state entirely.
//
// The update arithmetic is elementwise-identical to Sgd::Step, so a sharded run
// is bitwise-identical to the replicated reference path as long as gradients
// arrive through the same reduction contract. The one documented divergence:
// parameters re-activated by an unfreeze restart with zero momentum (their
// state was dropped at freeze time), whereas the replicated Sgd keeps stale
// velocity across freeze cycles.
#ifndef EGERIA_SRC_OPTIM_SHARDED_OPTIMIZER_H_
#define EGERIA_SRC_OPTIM_SHARDED_OPTIMIZER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/distributed/flat_view.h"
#include "src/distributed/thread_barrier.h"

namespace egeria {

class ShardedSgdGroup {
 public:
  ShardedSgdGroup(int world, float momentum, float weight_decay);

  // Collective: partition the active suffix [frozen_elems, frozen_elems +
  // active_elems) of the global flat parameter space into `world` contract
  // chunks, migrating momentum between owners (elements that were frozen or
  // never owned start at zero). Every rank must call this at the same logical
  // step with identical arguments. Returns rank's shard [begin, end) in
  // ACTIVE-space coordinates (offsets into a FlatParamView over the active
  // parameter list).
  std::pair<int64_t, int64_t> Reshard(int rank, int64_t frozen_elems,
                                      int64_t active_elems);

  // Local: momentum-SGD update on active-space range [begin, end), which must
  // lie within rank's current shard. Arithmetic matches Sgd::Step bitwise.
  void Step(int rank, FlatParamView& values, const FlatParamView& grads,
            int64_t begin, int64_t end, float lr);

  // Resident optimizer-state bytes held by `rank` (its velocity shard).
  int64_t StateBytes(int rank) const;

 private:
  struct RankShard {
    std::vector<float> velocity;  // indexed by global_offset - global_begin
    int64_t global_begin = 0;
    int64_t global_end = 0;
  };

  int world_;
  float momentum_;
  float weight_decay_;
  ThreadBarrier barrier_;
  std::vector<RankShard> shards_;
  std::vector<int64_t> frozen_elems_;  // per rank, for active->global translation
};

}  // namespace egeria

#endif  // EGERIA_SRC_OPTIM_SHARDED_OPTIMIZER_H_
