#include "src/optim/sharded_optimizer.h"

#include <algorithm>
#include <cstring>

#include "src/distributed/reduction_contract.h"
#include "src/distributed/transport/ring_schedule.h"
#include "src/optim/optimizer.h"
#include "src/util/logging.h"

namespace egeria {

ShardedSgd::ShardedSgd(float momentum, float weight_decay)
    : momentum_(momentum), weight_decay_(weight_decay) {}

TransportStatus ShardedSgd::Reshard(Transport& transport, int64_t frozen_elems,
                                    int64_t active_elems,
                                    std::pair<int64_t, int64_t>* shard) {
  EGERIA_CHECK(frozen_elems >= 0 && active_elems >= 0);
  const int rank = transport.Rank();
  const int world = transport.World();
  const Span active_span = ChunkSpan(active_elems, world, rank);
  const int64_t gb = frozen_elems + active_span.begin;
  const int64_t ge = frozen_elems + active_span.end;

  std::vector<float> next(static_cast<size_t>(ge - gb), 0.0F);
  // Copy slices of an old shard [src_gb, src_ge) that overlap the new one.
  auto merge = [&](int64_t src_gb, int64_t src_ge, const float* vel) {
    const int64_t lo = std::max(gb, src_gb);
    const int64_t hi = std::min(ge, src_ge);
    if (hi > lo) {
      std::memcpy(next.data() + (lo - gb), vel + (lo - src_gb),
                  static_cast<size_t>(hi - lo) * sizeof(float));
    }
  };

  if (prev_active_ >= 0) {
    // Bounds of rank r's shard under the previous partition — every rank can
    // derive all of these locally, so migration frames need no metadata.
    auto old_span = [&](int r) {
      const Span s = ChunkSpan(prev_active_, world, r);
      return Span{prev_frozen_ + s.begin, prev_frozen_ + s.end};
    };
    merge(global_begin_, global_end_, velocity_.data());
    // All-gather of old shards: seed the ring with our own, forward what we
    // received last step; after W-1 steps every rank has seen every old shard
    // and kept the overlapping slices. On error, bail before mutating any
    // member: `next` is local, so the old partition stays intact.
    const TransportStatus st = RingCirculate(
        transport, rank, [&](int r) { return old_span(r); },
        [&](float* buf, int, const Span& s) {
          std::memcpy(buf, velocity_.data(),
                      static_cast<size_t>(s.size()) * sizeof(float));
        },
        [&](const float* buf, int, const Span& s) { merge(s.begin, s.end, buf); },
        nullptr);
    if (!st.ok()) {
      return st;
    }
  }

  velocity_ = std::move(next);
  global_begin_ = gb;
  global_end_ = ge;
  frozen_elems_ = frozen_elems;
  prev_frozen_ = frozen_elems;
  prev_active_ = active_elems;
  if (shard != nullptr) {
    *shard = {active_span.begin, active_span.end};
  }
  return TransportStatus::Ok();
}

void ShardedSgd::Step(FlatParamView& values, const FlatParamView& grads,
                      int64_t begin, int64_t end, float lr) {
  EGERIA_CHECK(frozen_elems_ + begin >= global_begin_ &&
               frozen_elems_ + end <= global_end_);
  // SgdUpdateRange* are the same compiled instances Sgd::Step runs, which is
  // what makes sharded and replicated updates bitwise-identical.
  if (momentum_ == 0.0F) {
    ForEachAlignedSegment(values, grads, begin, end,
                          [&](float* w, const float* g, int64_t off, int64_t n) {
                            (void)off;
                            SgdUpdateRangeNoMomentum(w, g, n, lr, weight_decay_);
                          });
    return;
  }
  ForEachAlignedSegment(
      values, grads, begin, end, [&](float* w, const float* g, int64_t off, int64_t n) {
        float* v = velocity_.data() + (frozen_elems_ + off - global_begin_);
        SgdUpdateRange(w, g, v, n, lr, momentum_, weight_decay_);
      });
}

int64_t ShardedSgd::StateBytes() const {
  return static_cast<int64_t>(velocity_.size()) * static_cast<int64_t>(sizeof(float));
}

ShardedSgd::ShardState ShardedSgd::ExportShard() const {
  ShardState s;
  s.frozen_elems = prev_frozen_;
  s.active_elems = prev_active_;
  s.global_begin = global_begin_;
  s.global_end = global_end_;
  s.velocity = velocity_;
  return s;
}

std::pair<int64_t, int64_t> ShardedSgd::RestoreShard(
    int rank, int world, int64_t frozen_elems, int64_t active_elems,
    const std::vector<ShardState>& saved) {
  EGERIA_CHECK(frozen_elems >= 0 && active_elems >= 0);
  const Span active_span = ChunkSpan(active_elems, world, rank);
  const int64_t gb = frozen_elems + active_span.begin;
  const int64_t ge = frozen_elems + active_span.end;
  std::vector<float> next(static_cast<size_t>(ge - gb), 0.0F);
  for (const ShardState& s : saved) {
    EGERIA_CHECK_MSG(s.frozen_elems == frozen_elems && s.active_elems == active_elems,
                     "saved shard belongs to a different partition");
    EGERIA_CHECK(s.global_end - s.global_begin ==
                 static_cast<int64_t>(s.velocity.size()));
    const int64_t lo = std::max(gb, s.global_begin);
    const int64_t hi = std::min(ge, s.global_end);
    if (hi > lo) {
      std::memcpy(next.data() + (lo - gb), s.velocity.data() + (lo - s.global_begin),
                  static_cast<size_t>(hi - lo) * sizeof(float));
    }
  }
  velocity_ = std::move(next);
  global_begin_ = gb;
  global_end_ = ge;
  frozen_elems_ = frozen_elems;
  prev_frozen_ = frozen_elems;
  prev_active_ = active_elems;
  return {active_span.begin, active_span.end};
}

}  // namespace egeria
