#include "src/optim/sharded_optimizer.h"

#include <algorithm>

#include "src/distributed/reduction_contract.h"
#include "src/optim/optimizer.h"
#include "src/util/logging.h"

namespace egeria {

ShardedSgdGroup::ShardedSgdGroup(int world, float momentum, float weight_decay)
    : world_(world), momentum_(momentum), weight_decay_(weight_decay),
      barrier_(world) {
  EGERIA_CHECK(world_ >= 1);
  shards_.resize(static_cast<size_t>(world_));
  frozen_elems_.resize(static_cast<size_t>(world_), 0);
}

std::pair<int64_t, int64_t> ShardedSgdGroup::Reshard(int rank, int64_t frozen_elems,
                                                     int64_t active_elems) {
  EGERIA_CHECK(rank >= 0 && rank < world_);
  EGERIA_CHECK(frozen_elems >= 0 && active_elems >= 0);
  const int64_t ab = ChunkBegin(active_elems, world_, rank);
  const int64_t ae = ChunkEnd(active_elems, world_, rank);
  const int64_t gb = frozen_elems + ab;
  const int64_t ge = frozen_elems + ae;

  // Every rank's previous-step optimizer work is done; old shard layouts
  // (shards_[*]) are stable and readable.
  barrier_.Wait();

  // Build the new shard locally, pulling migrated momentum from whichever rank
  // owned each global offset under the old partition; offsets nobody owned
  // (newly active after an unfreeze, or first reshard) start at zero.
  std::vector<float> next(static_cast<size_t>(ge - gb), 0.0F);
  for (int r = 0; r < world_; ++r) {
    const RankShard& old = shards_[static_cast<size_t>(r)];
    const int64_t lo = std::max(gb, old.global_begin);
    const int64_t hi = std::min(ge, old.global_end);
    for (int64_t off = lo; off < hi; ++off) {
      next[static_cast<size_t>(off - gb)] =
          old.velocity[static_cast<size_t>(off - old.global_begin)];
    }
  }

  barrier_.Wait();  // Every rank has finished reading old shards; safe to replace.

  RankShard& s = shards_[static_cast<size_t>(rank)];
  s.velocity = std::move(next);
  s.global_begin = gb;
  s.global_end = ge;
  frozen_elems_[static_cast<size_t>(rank)] = frozen_elems;

  // New layout fully published before anyone steps or reshards again.
  barrier_.Wait();
  return {ab, ae};
}

void ShardedSgdGroup::Step(int rank, FlatParamView& values, const FlatParamView& grads,
                           int64_t begin, int64_t end, float lr) {
  EGERIA_CHECK(rank >= 0 && rank < world_);
  RankShard& s = shards_[static_cast<size_t>(rank)];
  const int64_t frozen = frozen_elems_[static_cast<size_t>(rank)];
  EGERIA_CHECK(frozen + begin >= s.global_begin && frozen + end <= s.global_end);
  // SgdUpdateRange* are the same compiled instances Sgd::Step runs, which is
  // what makes sharded and replicated updates bitwise-identical.
  if (momentum_ == 0.0F) {
    ForEachAlignedSegment(values, grads, begin, end,
                          [&](float* w, const float* g, int64_t off, int64_t n) {
                            (void)off;
                            SgdUpdateRangeNoMomentum(w, g, n, lr, weight_decay_);
                          });
    return;
  }
  ForEachAlignedSegment(
      values, grads, begin, end, [&](float* w, const float* g, int64_t off, int64_t n) {
        float* v = s.velocity.data() + (frozen + off - s.global_begin);
        SgdUpdateRange(w, g, v, n, lr, momentum_, weight_decay_);
      });
}

int64_t ShardedSgdGroup::StateBytes(int rank) const {
  EGERIA_CHECK(rank >= 0 && rank < world_);
  return static_cast<int64_t>(shards_[static_cast<size_t>(rank)].velocity.size()) *
         static_cast<int64_t>(sizeof(float));
}

}  // namespace egeria
