// Optimizers operating on explicit parameter lists.
//
// The parameter list is passed per step (not captured at construction) because Egeria
// changes the active set during training: frozen parameters are excluded from the
// update, exactly like setting requires_grad=false in the paper's PyTorch
// implementation (S5). State (momentum / Adam moments) is keyed by Parameter pointer
// and survives freeze/unfreeze cycles.
#ifndef EGERIA_SRC_OPTIM_OPTIMIZER_H_
#define EGERIA_SRC_OPTIM_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "src/nn/module.h"

namespace egeria {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update using accumulated gradients; does not zero them.
  virtual void Step(const std::vector<Parameter*>& params, float lr) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float momentum = 0.9F, float weight_decay = 0.0F);
  void Step(const std::vector<Parameter*>& params, float lr) override;

 private:
  float momentum_;
  float weight_decay_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-8F,
       float weight_decay = 0.0F);
  void Step(const std::vector<Parameter*>& params, float lr) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
    int64_t t = 0;
  };
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::unordered_map<Parameter*, State> state_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_OPTIM_OPTIMIZER_H_
