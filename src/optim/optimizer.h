// Optimizers operating on explicit parameter lists.
//
// The parameter list is passed per step (not captured at construction) because Egeria
// changes the active set during training: frozen parameters are excluded from the
// update, exactly like setting requires_grad=false in the paper's PyTorch
// implementation (S5). State (momentum / Adam moments) is keyed by Parameter pointer
// and survives freeze/unfreeze cycles unless the trainer explicitly releases it
// (ReleaseState) when a stage freezes — the optimizer-state half of the memory
// saving that sharding exploits across ranks.
#ifndef EGERIA_SRC_OPTIM_OPTIMIZER_H_
#define EGERIA_SRC_OPTIM_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/nn/module.h"
#include "src/tensor/serialize.h"

namespace egeria {

// The one compiled instance of the momentum-SGD update arithmetic. Every SGD
// path (replicated Sgd, ZeRO-1 ShardedSgd) calls these same functions so
// their results are bitwise-identical — inlining the loops separately would let
// the compiler contract mul+add chains differently per call site.
void SgdUpdateRange(float* w, const float* g, float* v, int64_t n, float lr,
                    float momentum, float weight_decay);
void SgdUpdateRangeNoMomentum(float* w, const float* g, int64_t n, float lr,
                              float weight_decay);

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update using accumulated gradients; does not zero them.
  virtual void Step(const std::vector<Parameter*>& params, float lr) = 0;
  // Drops per-parameter state (momentum / moments) for `params`, freeing their
  // memory; they restart from zero state if they ever become active again.
  virtual void ReleaseState(const std::vector<Parameter*>& params) = 0;
  // Resident bytes of optimizer state currently held.
  virtual int64_t StateBytes() const = 0;

  // Checkpoint support. ExportState adds this optimizer's per-parameter state
  // to `out`, keyed "<names[i]>#<field>" for params[i]; parameters that hold
  // no state (released frozen stages, never-stepped params) contribute
  // nothing. ImportState is the exact inverse: present entries are restored
  // bitwise, absent entries leave the parameter stateless (matching
  // ReleaseState semantics). Returns false (and logs) on a shape mismatch.
  virtual void ExportState(const std::vector<Parameter*>& params,
                           const std::vector<std::string>& names,
                           Checkpoint& out) const = 0;
  virtual bool ImportState(const std::vector<Parameter*>& params,
                           const std::vector<std::string>& names,
                           const Checkpoint& in) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float momentum = 0.9F, float weight_decay = 0.0F);
  void Step(const std::vector<Parameter*>& params, float lr) override;
  void ReleaseState(const std::vector<Parameter*>& params) override;
  int64_t StateBytes() const override;
  void ExportState(const std::vector<Parameter*>& params,
                   const std::vector<std::string>& names, Checkpoint& out) const override;
  bool ImportState(const std::vector<Parameter*>& params,
                   const std::vector<std::string>& names, const Checkpoint& in) override;

 private:
  float momentum_;
  float weight_decay_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-8F,
       float weight_decay = 0.0F);
  void Step(const std::vector<Parameter*>& params, float lr) override;
  void ReleaseState(const std::vector<Parameter*>& params) override;
  int64_t StateBytes() const override;
  void ExportState(const std::vector<Parameter*>& params,
                   const std::vector<std::string>& names, Checkpoint& out) const override;
  bool ImportState(const std::vector<Parameter*>& params,
                   const std::vector<std::string>& names, const Checkpoint& in) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
    int64_t t = 0;
  };
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::unordered_map<Parameter*, State> state_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_OPTIM_OPTIMIZER_H_
