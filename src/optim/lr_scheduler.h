// Learning-rate schedules as pure functions of the global iteration.
//
// These drive Egeria's unfreezing mechanism (paper S4.2.2): with annealing-style
// schedules (step decay / exponential), Egeria unfreezes all layers once the LR has
// dropped by 10x since the frontmost freeze; with cyclical schedules the user
// supplies a custom criterion. The schedule kinds mirror the paper's evaluation:
// step decay (CV), inverse square root (Transformer), linear (BERT fine-tuning),
// plus cosine annealing and cyclical for the unfreeze-policy tests.
#ifndef EGERIA_SRC_OPTIM_LR_SCHEDULER_H_
#define EGERIA_SRC_OPTIM_LR_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace egeria {

enum class LrScheduleKind { kConstant, kStepDecay, kInverseSqrt, kLinear, kCosine, kCyclical };

class LrScheduler {
 public:
  virtual ~LrScheduler() = default;
  virtual float LrAt(int64_t step) const = 0;
  virtual LrScheduleKind kind() const = 0;
  // True for monotone annealing schedules where the 10x-drop unfreeze rule applies.
  bool IsAnnealing() const {
    const LrScheduleKind k = kind();
    return k == LrScheduleKind::kStepDecay || k == LrScheduleKind::kLinear ||
           k == LrScheduleKind::kInverseSqrt;
  }
};

class ConstantLr : public LrScheduler {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float LrAt(int64_t) const override { return lr_; }
  LrScheduleKind kind() const override { return LrScheduleKind::kConstant; }

 private:
  float lr_;
};

// Multiplies by `factor` at each milestone step (e.g. the paper's ResNet schedule:
// x0.1 at epochs 100 and 150).
class StepDecayLr : public LrScheduler {
 public:
  StepDecayLr(float base, float factor, std::vector<int64_t> milestones);
  float LrAt(int64_t step) const override;
  LrScheduleKind kind() const override { return LrScheduleKind::kStepDecay; }

 private:
  float base_;
  float factor_;
  std::vector<int64_t> milestones_;
};

// Transformer schedule: linear warmup then ~ 1/sqrt(step).
class InverseSqrtLr : public LrScheduler {
 public:
  InverseSqrtLr(float base, int64_t warmup_steps);
  float LrAt(int64_t step) const override;
  LrScheduleKind kind() const override { return LrScheduleKind::kInverseSqrt; }

 private:
  float base_;
  int64_t warmup_;
};

// BERT fine-tuning schedule: linear decay from base to 0 over total_steps.
class LinearDecayLr : public LrScheduler {
 public:
  LinearDecayLr(float base, int64_t total_steps);
  float LrAt(int64_t step) const override;
  LrScheduleKind kind() const override { return LrScheduleKind::kLinear; }

 private:
  float base_;
  int64_t total_;
};

// Cosine annealing between base and min_lr with the given period (SGDR-style).
class CosineAnnealingLr : public LrScheduler {
 public:
  CosineAnnealingLr(float base, float min_lr, int64_t period);
  float LrAt(int64_t step) const override;
  LrScheduleKind kind() const override { return LrScheduleKind::kCosine; }

 private:
  float base_;
  float min_lr_;
  int64_t period_;
};

// Triangular cyclical LR between min and max.
class CyclicalLr : public LrScheduler {
 public:
  CyclicalLr(float min_lr, float max_lr, int64_t half_period);
  float LrAt(int64_t step) const override;
  LrScheduleKind kind() const override { return LrScheduleKind::kCyclical; }

 private:
  float min_lr_;
  float max_lr_;
  int64_t half_period_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_OPTIM_LR_SCHEDULER_H_
