#include "src/optim/lr_scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace egeria {

StepDecayLr::StepDecayLr(float base, float factor, std::vector<int64_t> milestones)
    : base_(base), factor_(factor), milestones_(std::move(milestones)) {
  EGERIA_CHECK(std::is_sorted(milestones_.begin(), milestones_.end()));
}

float StepDecayLr::LrAt(int64_t step) const {
  float lr = base_;
  for (int64_t m : milestones_) {
    if (step >= m) {
      lr *= factor_;
    }
  }
  return lr;
}

InverseSqrtLr::InverseSqrtLr(float base, int64_t warmup_steps)
    : base_(base), warmup_(std::max<int64_t>(1, warmup_steps)) {}

float InverseSqrtLr::LrAt(int64_t step) const {
  if (step < warmup_) {
    return base_ * static_cast<float>(step + 1) / static_cast<float>(warmup_);
  }
  return base_ * std::sqrt(static_cast<float>(warmup_) / static_cast<float>(step + 1));
}

LinearDecayLr::LinearDecayLr(float base, int64_t total_steps)
    : base_(base), total_(std::max<int64_t>(1, total_steps)) {}

float LinearDecayLr::LrAt(int64_t step) const {
  const float frac = 1.0F - static_cast<float>(std::min(step, total_)) /
                                static_cast<float>(total_);
  return base_ * std::max(frac, 0.0F);
}

CosineAnnealingLr::CosineAnnealingLr(float base, float min_lr, int64_t period)
    : base_(base), min_lr_(min_lr), period_(std::max<int64_t>(1, period)) {}

float CosineAnnealingLr::LrAt(int64_t step) const {
  const double phase = static_cast<double>(step % period_) / static_cast<double>(period_);
  return min_lr_ +
         0.5F * (base_ - min_lr_) * static_cast<float>(1.0 + std::cos(phase * 3.14159265358979));
}

CyclicalLr::CyclicalLr(float min_lr, float max_lr, int64_t half_period)
    : min_lr_(min_lr), max_lr_(max_lr), half_period_(std::max<int64_t>(1, half_period)) {}

float CyclicalLr::LrAt(int64_t step) const {
  const int64_t cycle_pos = step % (2 * half_period_);
  const float frac = (cycle_pos < half_period_)
                         ? static_cast<float>(cycle_pos) / static_cast<float>(half_period_)
                         : static_cast<float>(2 * half_period_ - cycle_pos) /
                               static_cast<float>(half_period_);
  return min_lr_ + (max_lr_ - min_lr_) * frac;
}

}  // namespace egeria
