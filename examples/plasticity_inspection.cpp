// Inspecting plasticity directly with the library's metric APIs.
//
// Builds a model and an int8 reference snapshot, then walks the stage boundaries
// comparing SP loss (Egeria's online metric, Eq. 1) against PWCCA (the paper's
// post-hoc analysis) on the same activations — the correspondence behind Fig. 4.
#include <cstdio>

#include "src/core/module_partitioner.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_image.h"
#include "src/metrics/pwcca.h"
#include "src/metrics/sp_loss.h"
#include "src/models/resnet.h"
#include "src/optim/lr_scheduler.h"
#include "src/quant/quantized_modules.h"
#include "src/util/timer.h"

using namespace egeria;

int main() {
  Rng rng(31);
  CifarResNetConfig model_cfg;
  model_cfg.blocks_per_stage = 3;
  model_cfg.base_width = 8;
  auto model = PartitionIntoChain("resnet20", BuildCifarResNetBlocks(model_cfg, rng),
                                  PartitionConfig{.target_modules = 5});

  SyntheticImageConfig data_cfg;
  data_cfg.num_samples = 512;
  data_cfg.height = 14;
  data_cfg.width = 14;
  data_cfg.noise_std = 0.5F;
  SyntheticImageDataset train(data_cfg);
  auto val_cfg = data_cfg;
  val_cfg.sample_salt = 1000000;
  val_cfg.num_samples = 128;
  SyntheticImageDataset val(val_cfg);

  // Train briefly so layers have differentiated progress.
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.06F);
  Trainer trainer(*model, train, val, cfg);
  trainer.Run();

  // Reference: int8 post-training quantization of the current snapshot, exactly as
  // the Egeria controller generates it.
  Int8Factory factory(QuantMode::kStatic);
  WallTimer quant_timer;
  auto reference = model->CloneForInference(factory);
  std::printf("int8 reference generated in %.1f ms\n", quant_timer.ElapsedMillis());

  Batch probe = train.GetBatch({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  model->SetTraining(false);
  model->SetBatch(probe);
  model->ForwardFrom(0, probe.input);
  reference->SetBatch(probe);
  reference->ForwardFrom(0, probe.input);

  std::printf("\n%-8s %-14s %-14s %-12s %-12s\n", "stage", "SP loss", "PWCCA dist",
              "SP time", "PWCCA time");
  for (int s = 0; s + 1 < model->NumStages(); ++s) {
    Tensor a_t = model->StageOutput(s);
    Tensor a_r = reference->StageOutput(s);
    WallTimer sp_timer;
    const double sp = SpLoss(a_t, a_r);
    const double sp_ms = sp_timer.ElapsedMillis();
    WallTimer pw_timer;
    const double pw = PwccaDistance(ActivationsToSamples(a_t), ActivationsToSamples(a_r));
    const double pw_ms = pw_timer.ElapsedMillis();
    std::printf("%-8d %-14.6f %-14.4f %-12.2fms %-12.2fms\n", s, sp, pw, sp_ms, pw_ms);
  }
  std::printf("\nBoth metrics agree on which stages track the reference closely; SP loss\n"
              "is the cheaper of the two (the paper reports ~10x), which is why Egeria\n"
              "uses it online and reserves PWCCA for post-hoc analysis.\n");
  return 0;
}
