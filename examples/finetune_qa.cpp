// BERT-style fine-tuning for span QA under Egeria (the paper's SQuAD scenario).
//
// Fine-tuning was freezing's original home (transfer learning): the pre-trained
// front layers converge almost immediately, so Egeria freezes them early and the
// linear-decay LR never triggers unfreezing (paper S6.2: 41% speedup, AutoFreeze
// close behind on this one task).
#include <cstdio>

#include "src/core/module_partitioner.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_text.h"
#include "src/models/bert.h"
#include "src/optim/lr_scheduler.h"

using namespace egeria;

int main() {
  Rng rng(11);
  BertConfig model_cfg;
  model_cfg.vocab = 32;
  model_cfg.dim = 24;
  model_cfg.heads = 4;
  model_cfg.ffn_dim = 48;
  model_cfg.num_layers = 4;
  model_cfg.max_len = 20;
  auto model = PartitionIntoChain("bert", BuildBertBlocks(model_cfg, rng),
                                  PartitionConfig{.target_modules = 6});

  SyntheticQaConfig data_cfg;
  data_cfg.vocab = 32;
  data_cfg.seq_len = 16;
  data_cfg.num_samples = 512;
  SyntheticQaDataset finetune(data_cfg);
  auto val_cfg = data_cfg;
  val_cfg.sample_salt = 1000000;
  val_cfg.num_samples = 128;
  SyntheticQaDataset val(val_cfg);

  // "Pre-training": a short pass over a disjoint sample stream of the task.
  {
    auto pre_cfg = data_cfg;
    pre_cfg.sample_salt = 7777777;
    SyntheticQaDataset pretrain_data(pre_cfg);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 16;
    cfg.task.kind = TaskKind::kQa;
    cfg.optimizer = TrainConfig::Optim::kAdam;
    cfg.weight_decay = 0.0F;
    cfg.lr_schedule = std::make_shared<ConstantLr>(1e-3F);
    Trainer pretrainer(*model, pretrain_data, val, cfg);
    TrainResult r = pretrainer.Run();
    std::printf("pretrained encoder: span F1 %.3f on held-out data\n",
                r.final_metric.display);
  }

  // Fine-tune with Egeria: linear LR decay (BERT convention), dynamic int8 ref.
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kQa;
  cfg.optimizer = TrainConfig::Optim::kAdam;
  cfg.weight_decay = 0.0F;
  const int64_t ipe = data_cfg.num_samples / cfg.batch_size;
  cfg.lr_schedule = std::make_shared<LinearDecayLr>(1e-3F, ipe * cfg.epochs);
  cfg.verbose = true;
  cfg.enable_egeria = true;
  cfg.egeria.quant_mode = QuantMode::kDynamic;
  cfg.egeria.eval_interval_n = 10;
  cfg.egeria.window_w = 3;
  cfg.egeria.max_bootstrap_iters = 32;  // Fine-tuning: short critical period.
  cfg.egeria.ref_update_evals = 2;

  Trainer trainer(*model, finetune, val, cfg);
  TrainResult result = trainer.Run();
  std::printf("\nfine-tuned span F1: %.3f\n", result.final_metric.display);
  std::printf("frozen encoder stages: %d / %d\n", result.final_frontier,
              model->NumStages());
  return 0;
}
