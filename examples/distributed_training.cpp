// Data-parallel training with the controller-worker layout (paper Fig. 5):
// two worker threads with model replicas, a real gradient all-reduce, and the
// Egeria controller on worker 0 broadcasting freeze decisions. Frozen stages drop
// out of the synchronization payload.
#include <cstdio>

#include "src/core/module_partitioner.h"
#include "src/data/synthetic_image.h"
#include "src/distributed/comm_scheduler.h"
#include "src/distributed/dist_trainer.h"
#include "src/distributed/network_model.h"
#include "src/models/resnet.h"
#include "src/optim/lr_scheduler.h"

using namespace egeria;

int main() {
  auto make_model = []() -> std::unique_ptr<ChainModel> {
    Rng rng(21);
    CifarResNetConfig cfg;
    cfg.blocks_per_stage = 2;
    cfg.base_width = 8;
    cfg.num_classes = 6;
    return PartitionIntoChain("resnet14", BuildCifarResNetBlocks(cfg, rng),
                              PartitionConfig{.target_modules = 4});
  };

  SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 6;
  data_cfg.num_samples = 384;
  data_cfg.height = 12;
  data_cfg.width = 12;
  data_cfg.noise_std = 0.4F;
  SyntheticImageDataset train(data_cfg);
  auto val_cfg = data_cfg;
  val_cfg.sample_salt = 1000000;
  val_cfg.num_samples = 96;
  SyntheticImageDataset val(val_cfg);

  DistTrainConfig cfg;
  cfg.world = 2;  // two workers (threads), each with a model replica
  cfg.epochs = 14;
  cfg.batch_size = 8;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.enable_egeria = true;
  cfg.egeria.async_controller = false;
  cfg.egeria.eval_interval_n = 6;
  cfg.egeria.window_w = 3;
  cfg.egeria.tolerance_coef = 0.4;
  cfg.egeria.enable_cache = false;
  cfg.egeria.ref_update_evals = 2;

  std::printf("training on %d workers with real all-reduce...\n", cfg.world);
  DistTrainResult result = TrainDataParallel(make_model, train, val, cfg);

  std::printf("final accuracy:       %.1f%%\n", result.final_display * 100);
  std::printf("replicas consistent:  %s\n", result.replicas_consistent ? "yes" : "NO");
  std::printf("frozen frontier:      %d\n", result.final_frontier);
  std::printf("gradient traffic:     %lld bytes (full model would be %lld, %.1f%% saved)\n",
              static_cast<long long>(result.bytes_synced),
              static_cast<long long>(result.bytes_full_model),
              100.0 * (1.0 - static_cast<double>(result.bytes_synced) /
                                 static_cast<double>(result.bytes_full_model)));

  // What the same frozen prefix buys on the paper's cluster (cost model).
  std::printf("\nprojected iteration speedup on a 5x2 GPU cluster (cost model):\n");
  std::vector<StageCost> stages(6);
  for (auto& s : stages) {
    s.fp_seconds = 0.004;
    s.bp_seconds = 0.008;
    s.grad_bytes = 500000;
  }
  ClusterConfig cluster;
  cluster.num_nodes = 5;
  cluster.gpus_per_node = 2;
  NetworkModel net(cluster);
  const auto full = SimulateIteration(stages, net, CommPolicy::kFifo, 0);
  const auto frozen = SimulateIteration(stages, net, CommPolicy::kFifo,
                                        std::max(1, result.final_frontier), true);
  std::printf("  %.1f%% faster per iteration with %d frozen stages\n",
              100.0 * (1.0 - frozen.iteration_seconds / full.iteration_seconds),
              std::max(1, result.final_frontier));
  return 0;
}
