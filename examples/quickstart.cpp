// Quickstart: train a small CNN with Egeria's knowledge-guided layer freezing.
//
// Shows the minimal integration path (mirroring the paper's claim that existing
// code needs minimal changes):
//   1. build a model as a block list and partition it into layer modules;
//   2. construct a Trainer with `enable_egeria = true`;
//   3. run — freezing, the reference model, plasticity evaluation, unfreezing, and
//      activation caching are automatic.
#include <cstdio>

#include "src/core/module_partitioner.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_image.h"
#include "src/models/resnet.h"
#include "src/optim/lr_scheduler.h"

using namespace egeria;

int main() {
  // 1. Model: a CIFAR-style ResNet-20, partitioned into 5 parameter-balanced
  //    layer modules (the units Egeria freezes).
  Rng rng(42);
  CifarResNetConfig model_cfg;
  model_cfg.blocks_per_stage = 3;  // ResNet-20
  model_cfg.base_width = 8;
  model_cfg.num_classes = 10;
  PartitionSummary partition;
  auto model = PartitionIntoChain("resnet20", BuildCifarResNetBlocks(model_cfg, rng),
                                  PartitionConfig{.target_modules = 5}, &partition);
  std::printf("model: %d layer modules\n", model->NumStages());
  for (size_t i = 0; i < partition.module_names.size(); ++i) {
    std::printf("  [%zu] %-24s %lld params\n", i, partition.module_names[i].c_str(),
                static_cast<long long>(partition.module_params[i]));
  }

  // 2. Data: synthetic class-conditional images; validation shares the class
  //    prototypes but draws a disjoint sample stream.
  SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.num_samples = 768;
  data_cfg.height = 14;
  data_cfg.width = 14;
  data_cfg.noise_std = 0.5F;
  SyntheticImageDataset train(data_cfg);
  auto val_cfg = data_cfg;
  val_cfg.sample_salt = 1000000;
  val_cfg.num_samples = 128;
  SyntheticImageDataset val(val_cfg);

  // 3. Training configuration with Egeria enabled.
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kClassification;
  const int64_t iters_per_epoch = data_cfg.num_samples / cfg.batch_size;
  cfg.lr_schedule = std::make_shared<StepDecayLr>(
      0.08F, 0.1F, std::vector<int64_t>{iters_per_epoch * 7});
  cfg.verbose = true;

  cfg.enable_egeria = true;
  cfg.egeria.eval_interval_n = 12;    // plasticity evaluation every n iterations
  cfg.egeria.window_w = 4;            // W consecutive low-slope evals to freeze
  cfg.egeria.enable_cache = true;     // skip forward passes of the frozen prefix

  Trainer trainer(*model, train, val, cfg);
  TrainResult result = trainer.Run();

  std::printf("\nfinal accuracy: %.1f%%\n", result.final_metric.display * 100);
  std::printf("training time:  %.1fs (fp %.1fs, bp %.1fs)\n", result.total_train_seconds,
              result.fp_seconds, result.bp_seconds);
  std::printf("frozen modules at end: %d / %d\n", result.final_frontier,
              model->NumStages());
  std::printf("forward passes served from the activation cache: %lld\n",
              static_cast<long long>(result.fp_skip_count));
  for (const auto& e : result.freeze_events) {
    std::printf("  iter %-5lld %s -> frontier %d\n", static_cast<long long>(e.iter),
                e.unfreeze ? "unfreeze-all" : "freeze", e.frontier_after);
  }
  return 0;
}
