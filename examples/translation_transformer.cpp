// Machine translation with an encoder-decoder Transformer under Egeria.
//
// Demonstrates the NLP path: dynamic int8 quantization for the reference model
// (paper S5), inverse-sqrt LR schedule, and freezing that sweeps the source
// embedding and front encoder layers — where the paper's Transformer-Base speedup
// (43%) comes from.
#include <cstdio>

#include "src/core/trainer.h"
#include "src/data/synthetic_text.h"
#include "src/models/transformer.h"
#include "src/optim/lr_scheduler.h"

using namespace egeria;

int main() {
  Rng rng(7);
  TransformerConfig model_cfg;
  model_cfg.vocab = 32;
  model_cfg.dim = 32;
  model_cfg.heads = 4;
  model_cfg.ffn_dim = 64;
  model_cfg.num_encoder_layers = 4;
  model_cfg.num_decoder_layers = 4;
  model_cfg.max_len = 16;
  TransformerChainModel model("mt", model_cfg, rng);
  std::printf("transformer: %d stages (src-embed, %d encoders, %d decoders, proj)\n",
              model.NumStages(), model_cfg.num_encoder_layers,
              model_cfg.num_decoder_layers);

  SyntheticTranslationConfig data_cfg;
  data_cfg.vocab = 32;
  data_cfg.seq_len = 10;
  data_cfg.num_samples = 768;
  SyntheticTranslationDataset train(data_cfg);
  auto val_cfg = data_cfg;
  val_cfg.sample_salt = 1000000;
  val_cfg.num_samples = 128;
  SyntheticTranslationDataset val(val_cfg);

  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kTranslation;
  cfg.optimizer = TrainConfig::Optim::kAdam;
  cfg.weight_decay = 0.0F;
  cfg.lr_schedule = std::make_shared<InverseSqrtLr>(3e-3F, 100);
  cfg.verbose = true;

  cfg.enable_egeria = true;
  cfg.egeria.quant_mode = QuantMode::kDynamic;  // NLP: dynamic quantization (S5).
  cfg.egeria.eval_interval_n = 12;
  cfg.egeria.window_w = 4;
  cfg.egeria.ref_update_evals = 2;
  cfg.egeria.max_bootstrap_iters = 96;

  Trainer trainer(model, train, val, cfg);
  TrainResult result = trainer.Run();

  std::printf("\nfinal perplexity: %.2f (1.0 = perfect)\n", result.final_metric.display);
  std::printf("frozen stages at end: %d / %d", result.final_frontier, model.NumStages());
  if (result.final_frontier > 0) {
    std::printf("  (frontmost active: %s)",
                model.StageName(result.final_frontier).c_str());
  }
  std::printf("\nforward skips via cached encoder memory: %lld\n",
              static_cast<long long>(result.fp_skip_count));
  return 0;
}
