#!/usr/bin/env bash
# Tier-1 verify plus kernel-throughput tracking.
#
# Runs the canonical build-and-test line from ROADMAP.md, then:
#   - the BM_MatMul{,Fp16,Int8}/256 microbenchmarks (items_per_second * 2 =
#     FLOP/s; each item is one multiply-add),
#   - the Table-2 smoke (reference-model forward latency per precision on the
#     paper-geometry ResNet-56),
#   - distributed smokes: a 2-process TCP world, a crash-resume drill, a
#     one-seed chaos drill (fault injection -> typed checksum abort ->
#     checkpoint resume, hash-pinned), a tracing drill (per-rank
#     EGERIA_TRACE=1 EGERIA_EXPORTER=1 run -> egeria_trace merge + --diagnose
#     -> phase totals reconciled against EGERIA_RESULT within 5%,
#     trace-measured overlap efficiency within 10 points of the worker's own
#     accounting, weights hash pinned vs untraced), and an injected-delay
#     straggler drill (--fault=delay@1:N, with a live Prometheus /metrics
#     scrape mid-run -> --diagnose must name rank 1, comm-wait-bound, hash
#     still pinned), and
#   - the frame-integrity / heartbeat overhead bench on real fig10 TCP worlds,
# and APPENDS the results as a git-SHA-keyed entry to the BENCH_gemm.json
# trajectory (scripts/bench_trajectory.py), so successive PRs' numbers line up
# and kernel regressions surface (re-running on the same SHA updates that SHA's
# entry in place). The integrity/heartbeat and comm-overlap records are
# advisory (never gated).
#
# Throttled-host defence: before recording, the kernel numbers are checked for
# plausibility against the trajectory median (bench_trajectory.py
# --check-only). An implausible run (exit 3) gets ONE re-run; if the second
# attempt is still implausible the entry is recorded with "suspect": true so
# it never becomes a gate baseline or median input.
#
# Usage: check.sh [--gate]
#   --gate   After recording, compare this run's BM_MatMul{,Fp16,Int8}/256
#            GFLOP/s against the per-kernel best of the last 5 clean
#            (non-suspect) trajectory entries and exit nonzero on a >15%
#            drop (the CI bench-regression gate). Suspect runs skip the
#            comparison — loudly — instead of failing CI on a throttled box.
set -euo pipefail

gate=0
for arg in "$@"; do
  case "$arg" in
    --gate) gate=1 ;;
    *) echo "check.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
repo_root=$(pwd)

# Bench binaries are gated behind -DEGERIA_BUILD_BENCH=ON. A build/ directory
# cached from a configure with =OFF (or a failed google-benchmark fetch) leaves
# them unbuilt, and "./build/foo: No such file or directory" mid-script is not
# an actionable diagnosis — fail up front with the fix instead.
require_bench() {
  if [ ! -x "./build/$1" ]; then
    {
      echo "check.sh: bench binary ./build/$1 is missing."
      echo "  Likely causes:"
      echo "   - build/ was configured with -DEGERIA_BUILD_BENCH=OFF (cached"
      echo "     CMakeCache.txt wins over this script's flag on some setups);"
      echo "   - the google-benchmark FetchContent download failed at configure"
      echo "     time, so benchmark-dependent targets were skipped."
      echo "  Fix: rm -rf build && cmake -B build -S . -DEGERIA_BUILD_BENCH=ON"
      echo "       && cmake --build build -j \$(nproc), then re-run check.sh."
    } >&2
    exit 4
  fi
}

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . -DEGERIA_BUILD_BENCH=ON
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

require_bench micro_kernels
require_bench table2_ref_precision
require_bench integrity_overhead
require_bench fig09_breakdown
require_bench egeria_ckpt

echo "== bench smoke: BM_MatMul{,Fp16,Int8}/256 =="
bench_tmp=$(mktemp)
bench_err=$(mktemp)
table2_tmp=$(mktemp)
integrity_tmp=$(mktemp)
fig09_tmp=$(mktemp)
trap 'rm -f "$bench_tmp" "$bench_err" "$table2_tmp" "$integrity_tmp" "$fig09_tmp"' EXIT

run_micro() {
  ./build/micro_kernels \
    --benchmark_filter='^BM_MatMul(Fp16|Int8)?/256$' \
    --benchmark_min_time="$1" \
    --benchmark_out="$bench_tmp" \
    --benchmark_out_format=json 2> "$bench_err"
}

# "1x" (exactly one iteration) needs google-benchmark >= 1.8; older releases
# only accept a seconds value and reject the flag with a message naming it
# ("The value of flag --benchmark_min_time is expected to be a double").
# Fall back to a short min_time ONLY on that flag rejection — any other
# failure (crashed kernel, bad filter, missing binary) must propagate, not be
# retried and masked by the fallback run.
micro_mode=1x
rc=0
run_micro "$micro_mode" || rc=$?
if [ "$rc" -ne 0 ]; then
  if grep -q 'benchmark_min_time' "$bench_err"; then
    echo "check.sh: --benchmark_min_time=1x unsupported; falling back to 0.05s"
    micro_mode=0.05
    run_micro "$micro_mode"
  else
    cat "$bench_err" >&2
    echo "check.sh: micro_kernels failed (exit $rc); not retrying" >&2
    exit "$rc"
  fi
fi
cat "$bench_err" >&2 || true

git_sha=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
# Uncommitted changes are not HEAD's numbers — mark them so a pre-commit run
# never overwrites (or masquerades as) the parent commit's entry.
if ! git diff-index --quiet HEAD -- 2>/dev/null; then
  git_sha="${git_sha}-dirty"
fi

echo "== bench plausibility: kernel numbers vs trajectory median =="
# Exit 3 = implausibly slow vs the recent clean median (host throttling).
# One re-run; a still-implausible second attempt is recorded as suspect by
# the final bench_trajectory.py call below (and excluded from baselines).
plaus_rc=0
python3 scripts/bench_trajectory.py "$repo_root/BENCH_gemm.json" \
  "$bench_tmp" "$table2_tmp" "$git_sha" --check-only || plaus_rc=$?
if [ "$plaus_rc" -eq 3 ]; then
  echo "check.sh: implausible kernel numbers; re-running micro_kernels once"
  run_micro "$micro_mode"
  cat "$bench_err" >&2 || true
elif [ "$plaus_rc" -ne 0 ]; then
  exit "$plaus_rc"
fi

echo "== bench smoke: table2 reference-forward latency per precision =="
./build/table2_ref_precision --smoke | tee "$table2_tmp"

echo "== bench smoke: fig09 frozen-forward elimination (feature store on/off) =="
# Static-freeze pair on a small deterministic workload: the feature store must
# eliminate >= 80% of the steady-state frozen-prefix forward seconds (the
# binary exits nonzero below that bar or if the store never serves). saved_s
# feeds the advisory frozen_forward_saved_s trajectory metric.
./build/fig09_breakdown --smoke | tee "$fig09_tmp"

echo "== dist smoke: 2-process TCP ring (egeria_worker via launch_dist.sh) =="
./scripts/launch_dist.sh -n 2 -t 300 -- --workload=tiny --epochs=2

echo "== dist smoke: crash-resume (checkpoint, --fault=exit, restart, hash pin) =="
# A 2-process world writes checkpoints, every rank is killed mid-run by fault
# injection, and rerunning the SAME command (minus the fault) resumes from the
# latest complete checkpoint. The final weights hash must be bitwise-equal to
# an uninterrupted run's — the checkpoint subsystem's bitwise-resume contract,
# exercised end to end from the command line.
resume_tmp=$(mktemp -d "${TMPDIR:-/tmp}/egeria-resume-XXXXXX")
trap 'rm -f "$bench_tmp" "$bench_err" "$table2_tmp" "$integrity_tmp" "$fig09_tmp"; rm -rf "$resume_tmp"' EXIT
hash_of() {
  grep -h '^EGERIA_RESULT' "$1"/rank_*.log \
    | sed -n 's/.*params_hash=\([0-9a-f]*\).*/\1/p' | sort -u
}
./scripts/launch_dist.sh -n 2 -t 300 -l "$resume_tmp/ref" -- \
  --workload=tiny --epochs=3
ref_hash=$(hash_of "$resume_tmp/ref")
[ -n "$ref_hash" ] && [ "$(printf '%s\n' "$ref_hash" | wc -l)" -eq 1 ] || {
  echo "check.sh: reference run produced inconsistent hashes" >&2; exit 1; }
# Crash run: both ranks exit at iteration 6; the checkpoint at 4 survives.
./scripts/launch_dist.sh -n 2 -t 300 -l "$resume_tmp/crash" -- \
  --workload=tiny --epochs=3 --ckpt-dir="$resume_tmp/ckpt" --ckpt-interval=4 \
  --fault=exit:6 > /dev/null 2>&1 && {
  echo "check.sh: fault injection did not fire" >&2; exit 1; } || true
./build/egeria_ckpt latest "$resume_tmp/ckpt" > /dev/null || {
  echo "check.sh: no complete checkpoint survived the crash" >&2; exit 1; }
./build/egeria_ckpt list "$resume_tmp/ckpt"
# Restart (same command, no fault): workers resume and finish the run.
./scripts/launch_dist.sh -n 2 -t 300 -l "$resume_tmp/resume" -- \
  --workload=tiny --epochs=3 --ckpt-dir="$resume_tmp/ckpt" --ckpt-interval=4
resume_hash=$(hash_of "$resume_tmp/resume")
if [ "$resume_hash" != "$ref_hash" ]; then
  echo "check.sh: crash-resume hash $resume_hash != uninterrupted $ref_hash" >&2
  exit 1
fi
# The pin must come from a genuine resume, not a silent from-scratch rerun.
if grep -h '^EGERIA_RESULT' "$resume_tmp/resume"/rank_*.log \
     | grep -q 'resumed_from=-1'; then
  echo "check.sh: restart did not resume from the checkpoint" >&2
  exit 1
fi
echo "check.sh: crash-resume hash pin OK ($ref_hash)"

echo "== dist smoke: one-seed chaos (corrupt -> checksum abort -> resume pin) =="
# Seed 19's derived scenario at world 2 corrupts a frame on rank 0 at
# iteration 5 (FaultPlan::FromSeed is deterministic, so this smoke is too).
# The flipped byte must surface as a typed integrity failure — nonzero exit
# with EGERIA_ABORT code=checksum — never as silent gradient corruption, and
# the rerun without the fault must resume from the surviving checkpoint and
# pin the uninterrupted run's weights hash bitwise.
./scripts/launch_dist.sh -n 2 -t 300 -l "$resume_tmp/chaos" -- \
  --workload=tiny --epochs=3 --ckpt-dir="$resume_tmp/chaos_ckpt" \
  --ckpt-interval=4 --fault=seed:19 > /dev/null 2>&1 && {
  echo "check.sh: chaos seed 19 did not fire" >&2; exit 1; } || true
grep -h '^EGERIA_ABORT' "$resume_tmp/chaos"/rank_*.log || true
grep -hq 'code=checksum' "$resume_tmp/chaos"/rank_*.log || {
  echo "check.sh: expected a checksum abort from chaos seed 19" >&2; exit 1; }
./scripts/launch_dist.sh -n 2 -t 300 -l "$resume_tmp/chaos_resume" -- \
  --workload=tiny --epochs=3 --ckpt-dir="$resume_tmp/chaos_ckpt" \
  --ckpt-interval=4
chaos_hash=$(hash_of "$resume_tmp/chaos_resume")
if [ "$chaos_hash" != "$ref_hash" ]; then
  echo "check.sh: chaos-resume hash $chaos_hash != uninterrupted $ref_hash" >&2
  exit 1
fi
if grep -h '^EGERIA_RESULT' "$resume_tmp/chaos_resume"/rank_*.log \
     | grep -q 'resumed_from=-1'; then
  echo "check.sh: chaos restart did not resume from the checkpoint" >&2
  exit 1
fi
echo "check.sh: chaos smoke OK (seed 19: checksum abort, resume pin $chaos_hash)"

echo "== dist smoke: tracing + exporter (merge, reconcile, diagnose, hash pin) =="
# The crash-drill reference run above is the untraced twin: rerunning the SAME
# command with EGERIA_TRACE=1 EGERIA_EXPORTER=1 must (a) produce per-rank
# trace files that tools/egeria_trace merges into one timeline whose per-phase
# span totals reconcile with the EGERIA_RESULT seconds within 5%, (b) start
# the per-rank HTTP exporter, (c) leave the trained weights hash
# bitwise-unchanged (observability, never arithmetic), and (d) cost little
# enough that the advisory tracer_overhead_pct stays small. The tiny run is
# over in well under a second, so the LIVE /metrics scrape happens during the
# longer injected-delay drill below — same world, same exporter.
trace_tmp="$resume_tmp/trace"
mkdir -p "$trace_tmp"
EGERIA_TRACE=1 EGERIA_TRACE_DIR="$trace_tmp" EGERIA_EXPORTER=1 \
  ./scripts/launch_dist.sh -n 2 -t 300 -l "$trace_tmp/logs" -- \
  --workload=tiny --epochs=3
grep -hq '^EGERIA_EXPORTER rank=0 port=' "$trace_tmp/logs"/rank_0.log || {
  echo "check.sh: worker did not start the metrics exporter" >&2; exit 1; }
traced_hash=$(hash_of "$trace_tmp/logs")
if [ "$traced_hash" != "$ref_hash" ]; then
  echo "check.sh: traced+exporter-run hash $traced_hash != untraced $ref_hash" >&2
  exit 1
fi
./build/egeria_trace --out="$trace_tmp/merged.json" --tolerance-pct=5 \
  --reconcile="$trace_tmp/logs/rank_0.log" --diagnose \
  "$trace_tmp"/trace_rank0.json "$trace_tmp"/trace_rank1.json \
  | tee "$repo_root/build/diagnosis_report.txt"
# The trace-measured overlap efficiency must agree with the worker's own
# comm_hidden/comm_exposed accounting (EGERIA_RESULT) within 10 points —
# two independent measurements of the same backward/comm overlap. Both sides
# aggregate across ALL ranks: which rank hides its comm varies run to run.
python3 - "$repo_root/build/diagnosis_report.txt" "$trace_tmp"/logs/rank_*.log <<'EOF'
import json
import sys
diag = None
for line in open(sys.argv[1]):
    if line.startswith("EGERIA_DIAGNOSIS "):
        diag = json.loads(line[len("EGERIA_DIAGNOSIS "):])
if diag is None:
    sys.exit("check.sh: no EGERIA_DIAGNOSIS line in the diagnosis report")
hidden = exposed = 0.0
for path in sys.argv[2:]:
    for line in open(path):
        if line.startswith("EGERIA_RESULT"):
            kv = dict(f.partition("=")[::2] for f in line.split()[1:])
            hidden += float(kv.get("comm_hidden_seconds", 0.0))
            exposed += float(kv.get("comm_exposed_seconds", 0.0))
total = hidden + exposed
result_pct = 100.0 * hidden / total if total > 0 else 0.0
trace_pct = float(diag["overlap_efficiency_pct"])
delta = abs(trace_pct - result_pct)
print(f"overlap cross-check: trace={trace_pct:.1f}% result={result_pct:.1f}% "
      f"delta={delta:.1f} points")
if delta > 10.0:
    sys.exit("check.sh: trace-measured overlap efficiency disagrees with "
             "EGERIA_RESULT by more than 10 points")
EOF
# Advisory overhead: traced vs untraced train_s from rank 0's EGERIA_RESULT.
train_s_of() {
  grep -h '^EGERIA_RESULT' "$1" | sed -n 's/.*[ ]train_s=\([0-9.]*\).*/\1/p' \
    | head -n 1
}
trace_smoke_tmp=$(mktemp)
ref_train_s=$(train_s_of "$resume_tmp/ref/rank_0.log")
traced_train_s=$(train_s_of "$trace_tmp/logs/rank_0.log")
python3 - "$ref_train_s" "$traced_train_s" > "$trace_smoke_tmp" <<'EOF'
import sys
ref, traced = float(sys.argv[1]), float(sys.argv[2])
pct = 100.0 * (traced / ref - 1.0) if ref > 0 else 0.0
print(f"EGERIA_TRACE_SMOKE tracer_overhead_pct={pct:.2f} "
      f"traced_train_s={traced:.6f} untraced_train_s={ref:.6f}")
EOF
cat "$trace_smoke_tmp"
echo "check.sh: trace smoke OK (merged $trace_tmp/merged.json, hash pin $traced_hash)"

echo "== dist smoke: injected-delay straggler -> live scrape + --diagnose =="
# Same 2-process world, but rank 1 sleeps 400 ms per iteration (the FaultPlan
# delay scenario, rank-qualified so both ranks get identical argv). The sleeps
# land between phases on rank 1 (unattributed gap) and balloon rank 0's
# comm_wait — the diagnosis must name rank 1 as the straggler and classify the
# run comm-wait-bound. The delays also stretch the run to ~2.5 s, wide enough
# to scrape rank 0's live /metrics mid-run (the tiny run without delays is
# over in <100 ms — scraping it is a lost race by construction). Injected
# delay is pure sleep, so the trained-weights hash must STILL pin against the
# undelayed, unscraped reference. The online detector's EGERIA_STRAGGLER line
# is printed when the heartbeat fold caught it too (advisory: short runs may
# finish before a beat ships the skewed histograms).
strag_tmp="$resume_tmp/straggler"
mkdir -p "$strag_tmp"
EGERIA_TRACE=1 EGERIA_TRACE_DIR="$strag_tmp" EGERIA_EXPORTER=1 \
  ./scripts/launch_dist.sh -n 2 -t 300 -l "$strag_tmp/logs" -- \
  --workload=tiny --epochs=3 \
  --fault=delay@1:1,delay@1:2,delay@1:3,delay@1:4,delay@1:5,delay@1:6 &
strag_run_pid=$!
# Scrape rank 0's exporter mid-run: the port file (tmp+rename, so complete the
# moment it exists) names the ephemeral port. Retry until the scrape contains
# the dist-phase histograms — an early scrape can land before the trainer has
# registered them — or the run ends (which fails the assertion below).
scrape_file="$strag_tmp/scrape_metrics.txt"
scrape_ok=0
while kill -0 "$strag_run_pid" 2>/dev/null; do
  if [ -f "$strag_tmp/obs_port_rank0" ]; then
    if python3 - "$(cat "$strag_tmp/obs_port_rank0")" "$scrape_file" <<'EOF'
import sys
import urllib.request
try:
    body = urllib.request.urlopen(
        f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=2).read()
except OSError:
    sys.exit(1)
open(sys.argv[2], "wb").write(body)
EOF
    then
      if grep -q '^# TYPE egeria_dist_fp_s histogram' "$scrape_file"; then
        scrape_ok=1
        break
      fi
    fi
  fi
  sleep 0.05
done
wait "$strag_run_pid"
if [ "$scrape_ok" -ne 1 ]; then
  echo "check.sh: live /metrics scrape never served the phase histograms" >&2
  exit 1
fi
grep -q '_bucket{le="' "$scrape_file" || {
  echo "check.sh: /metrics scrape has no histogram buckets" >&2; exit 1; }
echo "check.sh: live /metrics scrape OK ($(wc -l < "$scrape_file") lines)"
strag_hash=$(hash_of "$strag_tmp/logs")
if [ "$strag_hash" != "$ref_hash" ]; then
  echo "check.sh: delayed+scraped-run hash $strag_hash != reference $ref_hash" >&2
  exit 1
fi
grep -h '^EGERIA_STRAGGLER' "$strag_tmp/logs"/rank_*.log || true
./build/egeria_trace --diagnose \
  "$strag_tmp"/trace_rank0.json "$strag_tmp"/trace_rank1.json \
  | tee "$repo_root/build/diagnosis_straggler.txt"
grep -q '"classification":"comm-wait-bound"' \
  "$repo_root/build/diagnosis_straggler.txt" || {
  echo "check.sh: delayed run not classified comm-wait-bound" >&2; exit 1; }
grep -q '"straggler_rank":1' "$repo_root/build/diagnosis_straggler.txt" || {
  echo "check.sh: --diagnose did not name rank 1 as the straggler" >&2
  exit 1
}
echo "check.sh: straggler drill OK (diagnosis named rank 1, comm-wait-bound)"

echo "== dist bench: frame-integrity / heartbeat overhead (advisory) =="
# Paired-median protocol over real fig10 TCP worlds (bench/integrity_overhead.cc).
# Modest repeats keep check.sh quick; the recorded number is advisory context
# in the trajectory — shared-host distributed timings are too noisy to gate.
./build/integrity_overhead --world=3 --epochs=6 --repeats=3 | tee "$integrity_tmp"

# The crash-resume reference run above was a real 2-process TCP world with
# backward-overlapped reduction (the default): its EGERIA_RESULT line carries
# the comm_hidden/comm_exposed split, recorded as the advisory
# overlap_hidden_comm trajectory metric.
overlap_tmp=$(mktemp)
grep -h '^EGERIA_RESULT' "$resume_tmp/ref"/rank_0.log > "$overlap_tmp" || true

gate_args=()
if [ "$gate" -eq 1 ]; then
  gate_args=(--gate)
fi
# The merged trace outlives the tmp dir so CI can upload it as an artifact.
cp "$trace_tmp/merged.json" "$repo_root/build/trace_merged.json"

python3 scripts/bench_trajectory.py "$repo_root/BENCH_gemm.json" \
  "$bench_tmp" "$table2_tmp" "$git_sha" --integrity="$integrity_tmp" \
  --overlap="$overlap_tmp" --fig09="$fig09_tmp" --trace="$trace_smoke_tmp" \
  --diagnose="$repo_root/build/diagnosis_report.txt" \
  --render="$repo_root/BENCH_summary.md" ${gate_args[@]+"${gate_args[@]}"}
rm -f "$overlap_tmp" "$trace_smoke_tmp"

echo "check.sh: OK (trajectory in BENCH_gemm.json)"
