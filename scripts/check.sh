#!/usr/bin/env bash
# Tier-1 verify plus a GEMM throughput smoke.
#
# Runs the canonical build-and-test line from ROADMAP.md, then one iteration of
# the BM_MatMul/256 microbenchmark and writes the result to BENCH_gemm.json so
# successive PRs can track the kernel's GFLOP/s trajectory
# (items_per_second * 2 = FLOP/s; each item is one multiply-add).
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . -DEGERIA_BUILD_BENCH=ON
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== bench smoke: BM_MatMul/256 =="
# "1x" (exactly one iteration) needs google-benchmark >= 1.8; older releases get
# a short min_time instead.
./build/micro_kernels \
  --benchmark_filter='^BM_MatMul/256$' \
  --benchmark_min_time=1x \
  --benchmark_out="${repo_root}/BENCH_gemm.json" \
  --benchmark_out_format=json ||
./build/micro_kernels \
  --benchmark_filter='^BM_MatMul/256$' \
  --benchmark_min_time=0.05 \
  --benchmark_out="${repo_root}/BENCH_gemm.json" \
  --benchmark_out_format=json

python3 - "$repo_root/BENCH_gemm.json" <<'EOF' || true
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for b in report.get("benchmarks", []):
    gflops = 2.0 * b.get("items_per_second", 0.0) / 1e9
    print(f"{b['name']}: {gflops:.1f} GFLOP/s")
EOF

echo "check.sh: OK (bench report in BENCH_gemm.json)"
