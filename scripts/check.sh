#!/usr/bin/env bash
# Tier-1 verify plus kernel-throughput tracking.
#
# Runs the canonical build-and-test line from ROADMAP.md, then:
#   - the BM_MatMul{,Fp16,Int8}/256 microbenchmarks (items_per_second * 2 =
#     FLOP/s; each item is one multiply-add), and
#   - the Table-2 smoke (reference-model forward latency per precision on the
#     paper-geometry ResNet-56),
# and APPENDS the results as a git-SHA-keyed entry to the BENCH_gemm.json
# trajectory, so successive PRs' numbers line up and kernel regressions surface
# (re-running on the same SHA updates that SHA's entry in place).
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . -DEGERIA_BUILD_BENCH=ON
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== bench smoke: BM_MatMul{,Fp16,Int8}/256 =="
bench_tmp=$(mktemp)
table2_tmp=$(mktemp)
trap 'rm -f "$bench_tmp" "$table2_tmp"' EXIT
# "1x" (exactly one iteration) needs google-benchmark >= 1.8; older releases get
# a short min_time instead.
./build/micro_kernels \
  --benchmark_filter='^BM_MatMul(Fp16|Int8)?/256$' \
  --benchmark_min_time=1x \
  --benchmark_out="$bench_tmp" \
  --benchmark_out_format=json ||
./build/micro_kernels \
  --benchmark_filter='^BM_MatMul(Fp16|Int8)?/256$' \
  --benchmark_min_time=0.05 \
  --benchmark_out="$bench_tmp" \
  --benchmark_out_format=json

echo "== bench smoke: table2 reference-forward latency per precision =="
./build/table2_ref_precision --smoke | tee "$table2_tmp"

git_sha=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
# Uncommitted changes are not HEAD's numbers — mark them so a pre-commit run
# never overwrites (or masquerades as) the parent commit's entry.
if ! git diff-index --quiet HEAD -- 2>/dev/null; then
  git_sha="${git_sha}-dirty"
fi

python3 - "$repo_root/BENCH_gemm.json" "$bench_tmp" "$table2_tmp" "$git_sha" <<'EOF'
import datetime
import json
import re
import sys

traj_path, bench_path, table2_path, sha = sys.argv[1:5]

entry = {
    "sha": sha,
    "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "gemm_gflops": {},
    "table2_smoke": {},
}

with open(bench_path) as f:
    report = json.load(f)
for b in report.get("benchmarks", []):
    gflops = 2.0 * b.get("items_per_second", 0.0) / 1e9
    entry["gemm_gflops"][b["name"]] = round(gflops, 2)
    print(f"{b['name']}: {gflops:.1f} GFLOP/s")

with open(table2_path) as f:
    for line in f:
        m = re.match(
            r"TABLE2_SMOKE precision=(\S+) ref_fwd_ms=([\d.]+) "
            r"speedup_vs_fp32=([\d.]+)", line)
        if m:
            entry["table2_smoke"][m.group(1)] = {
                "ref_fwd_ms": float(m.group(2)),
                "speedup_vs_fp32": float(m.group(3)),
            }
        m = re.match(r"TABLE2_SMOKE fastest=(\S+)", line)
        if m:
            entry["table2_smoke"]["fastest"] = m.group(1)

# Load (or migrate) the trajectory and update-or-append this SHA's entry.
runs = []
try:
    with open(traj_path) as f:
        existing = json.load(f)
    if isinstance(existing, dict) and "runs" in existing:
        runs = existing["runs"]
    elif isinstance(existing, dict) and "benchmarks" in existing:
        # Pre-trajectory format: one raw google-benchmark report.
        legacy = {"sha": "pre-trajectory", "gemm_gflops": {}}
        for b in existing.get("benchmarks", []):
            legacy["gemm_gflops"][b["name"]] = round(
                2.0 * b.get("items_per_second", 0.0) / 1e9, 2)
        runs = [legacy]
except (OSError, ValueError):
    runs = []

# Replace this SHA's entry; a clean run also supersedes its own pre-commit
# "-dirty" entry so dirty runs never become permanent orphans.
base = sha[:-len("-dirty")] if sha.endswith("-dirty") else sha
runs = [r for r in runs if r.get("sha") not in (sha, base + "-dirty")]
runs.append(entry)
with open(traj_path, "w") as f:
    json.dump({"schema": "egeria-bench-trajectory-v1", "runs": runs}, f, indent=2)
    f.write("\n")
print(f"trajectory: {len(runs)} run(s) in BENCH_gemm.json (this run: {sha})")
EOF

echo "check.sh: OK (trajectory in BENCH_gemm.json)"
