#!/usr/bin/env python3
"""Append a benchmark run to the BENCH_gemm.json trajectory; optionally gate.

Usage:
    bench_trajectory.py TRAJ_JSON BENCH_JSON TABLE2_TXT GIT_SHA
        [--integrity=FILE] [--overlap=FILE] [--fig09=FILE] [--trace=FILE]
        [--diagnose=FILE] [--render=FILE] [--gate] [--check-only]

Parses the google-benchmark JSON report (BM_MatMul{,Fp16,Int8}/256) and the
table2 smoke output, then updates-or-appends a git-SHA-keyed entry in the
trajectory file (re-running on the same SHA replaces that SHA's entry; a clean
run supersedes its own pre-commit "-dirty" entry).

Plausibility (the throttled-host defence): a run is SUSPECT when any gated
kernel lands below SUSPECT_FRACTION x the median of that kernel over the last
BASELINE_WINDOW non-suspect trajectory entries. Shared-host CPU throttling
produces exactly this signature (every kernel collapses together by 2-4x), and
one such entry must never become the gate baseline — that is how a genuine
regression hid behind a polluted baseline once.

    --check-only   Parse + judge plausibility only; write NOTHING. Exit 3 if
                   the run looks suspect (the caller re-runs the benchmark
                   once and records the second attempt), 0 otherwise.

A run still implausible on its final recording is written with
"suspect": true: it stays in the trajectory for forensics but is excluded
from gate baselines and future medians.

With --integrity=FILE, additionally parses bench/integrity_overhead train-mode
output (EGERIA_INTEGRITY_BENCH / EGERIA_HEARTBEAT_BENCH lines) into the entry.
With --overlap=FILE, parses an EGERIA_RESULT line (tools/egeria_worker) for
comm_hidden_seconds/comm_exposed_seconds — the backward-overlap split of ring
comm time on a real TCP world — into an "overlap_hidden_comm" record. With
--fig09=FILE, parses a FIG09_SMOKE line (fig09_breakdown --smoke) into a
"frozen_forward_saved" record: the steady-state frozen-prefix forward seconds
the feature store eliminated, and the fraction thereof. With --trace=FILE,
parses an EGERIA_TRACE_SMOKE line (scripts/check.sh's tracing drill) into a
"tracer_overhead" record: wall-time cost of EGERIA_TRACE=1 on the 2-process
TCP smoke (budget: <= 2%, but single-digit noise on a shared host is normal).
With --diagnose=FILE, parses the EGERIA_DIAGNOSIS line emitted by
tools/egeria_trace --diagnose into a "diagnosis" record: the bound
classification, measured overlap_efficiency_pct, and straggler_skew of the
healthy 2-process trace-smoke run. All are advisory context: shared-host
timings are too noisy to gate.

With --render=FILE, additionally writes a markdown before/after summary of the
recorded entry versus the recent clean baseline window — CI uploads it as an
artifact next to the trajectory itself.

With --gate, compares this run's GFLOP/s per kernel against the BEST of the
last BASELINE_WINDOW non-suspect foreign entries (best-of-K, so one slow-host
baseline cannot relax the gate, and one fast outlier is what you must stay
within GATE_DROP_FRACTION of) and exits 1 on a drop beyond GATE_DROP_FRACTION.
A run marked suspect skips the gate comparison (its measurement is
untrustworthy in BOTH directions) — loudly, exit 0 — because failing CI on a
throttled host is a false positive; the suspect flag keeps it out of every
future baseline instead. The entry is written either way, so the trajectory
stays continuous even across a failing gate.

Lives in its own file (not a shell heredoc) so `set -u` argv handling, exit
codes, and CI log capture are all ordinary — the script validates its own argv.
"""

import datetime
import json
import re
import sys

GATE_DROP_FRACTION = 0.15
SUSPECT_FRACTION = 0.5
BASELINE_WINDOW = 5
GATE_KERNELS = ("BM_MatMul/256", "BM_MatMulFp16/256", "BM_MatMulInt8/256")


def parse_benchmarks(bench_path):
    with open(bench_path) as f:
        report = json.load(f)
    gflops = {}
    for b in report.get("benchmarks", []):
        value = 2.0 * b.get("items_per_second", 0.0) / 1e9
        gflops[b["name"]] = round(value, 2)
        print(f"{b['name']}: {value:.1f} GFLOP/s")
    return gflops


def parse_table2(table2_path):
    smoke = {}
    with open(table2_path) as f:
        for line in f:
            m = re.match(
                r"TABLE2_SMOKE precision=(\S+) ref_fwd_ms=([\d.]+) "
                r"speedup_vs_fp32=([\d.]+)", line)
            if m:
                smoke[m.group(1)] = {
                    "ref_fwd_ms": float(m.group(2)),
                    "speedup_vs_fp32": float(m.group(3)),
                }
            m = re.match(r"TABLE2_SMOKE fastest=(\S+)", line)
            if m:
                smoke["fastest"] = m.group(1)
    return smoke


def parse_integrity(path):
    overhead = {}
    keys = {
        "EGERIA_INTEGRITY_BENCH": "integrity",
        "EGERIA_HEARTBEAT_BENCH": "heartbeat",
    }
    with open(path) as f:
        for line in f:
            fields = line.split()
            if not fields or fields[0] not in keys:
                continue
            parsed = {}
            for kv in fields[1:]:
                k, _, v = kv.partition("=")
                try:
                    parsed[k] = float(v) if "." in v or "-" in v else int(v)
                except ValueError:
                    parsed[k] = v
            overhead[keys[fields[0]]] = parsed
            print(line.rstrip())
    return overhead


def parse_overlap(path):
    """First EGERIA_RESULT line -> the comm-overlap split of that rank's run."""
    with open(path) as f:
        for line in f:
            if not line.startswith("EGERIA_RESULT"):
                continue
            kv = dict(field.partition("=")[::2] for field in line.split()[1:])
            try:
                hidden = float(kv.get("comm_hidden_seconds", ""))
                exposed = float(kv.get("comm_exposed_seconds", ""))
            except ValueError:
                continue
            total = hidden + exposed
            record = {
                "comm_hidden_seconds": round(hidden, 6),
                "comm_exposed_seconds": round(exposed, 6),
                "hidden_fraction":
                    round(hidden / total, 4) if total > 0 else 0.0,
            }
            print(f"overlap_hidden_comm: {record}")
            return record
    return None


def parse_fig09(path):
    """First FIG09_SMOKE line -> the feature store's frozen-forward savings."""
    with open(path) as f:
        for line in f:
            if not line.startswith("FIG09_SMOKE "):
                continue
            kv = dict(field.partition("=")[::2] for field in line.split()[1:])
            try:
                record = {
                    "frozen_fp_store_off_s":
                        round(float(kv["frozen_fp_store_off_s"]), 6),
                    "frozen_fp_store_on_s":
                        round(float(kv["frozen_fp_store_on_s"]), 6),
                    "frozen_forward_saved_s": round(float(kv["saved_s"]), 6),
                    "saved_frac": round(float(kv["saved_frac"]), 4),
                    "fp_skips": int(kv["fp_skips"]),
                }
            except (KeyError, ValueError):
                continue
            print(f"frozen_forward_saved: {record}")
            return record
    return None


def parse_trace(path):
    """First EGERIA_TRACE_SMOKE line -> the tracing drill's overhead record."""
    with open(path) as f:
        for line in f:
            if not line.startswith("EGERIA_TRACE_SMOKE "):
                continue
            kv = dict(field.partition("=")[::2] for field in line.split()[1:])
            try:
                record = {
                    "tracer_overhead_pct": round(float(kv["tracer_overhead_pct"]), 2),
                    "traced_train_s": round(float(kv["traced_train_s"]), 6),
                    "untraced_train_s": round(float(kv["untraced_train_s"]), 6),
                }
            except (KeyError, ValueError):
                continue
            print(f"tracer_overhead: {record}")
            return record
    return None


def parse_diagnose(path):
    """Last EGERIA_DIAGNOSIS line -> the bottleneck-diagnosis advisory record.

    The line is machine-readable JSON from tools/egeria_trace --diagnose; the
    recorded subset is what trends usefully across PRs: the bound class, the
    measured overlap efficiency, and the straggler skew."""
    record = None
    try:
        f = open(path)
    except OSError:
        return None
    with f:
        for line in f:
            if not line.startswith("EGERIA_DIAGNOSIS "):
                continue
            try:
                d = json.loads(line[len("EGERIA_DIAGNOSIS "):])
            except ValueError:
                continue
            record = {
                "classification": d.get("classification"),
                "dominant_phase": d.get("dominant_phase"),
                "overlap_efficiency_pct": d.get("overlap_efficiency_pct"),
                "straggler_rank": d.get("straggler_rank"),
                "straggler_skew": d.get("straggler_skew"),
                "critical_path_s": d.get("critical_path_s"),
            }
    if record is not None:
        print(f"diagnosis: {record}")
    return record


def load_runs(traj_path):
    """Trajectory entries, oldest first; [] seeds a brand-new trajectory.

    A missing, empty, or unparseable file is the first-ever run (or a wiped
    trajectory), not an error: return [] so the new entry seeds the file and
    the gate passes on 'no prior clean entry'."""
    try:
        with open(traj_path) as f:
            existing = json.load(f)
    except (OSError, ValueError):
        return []
    if isinstance(existing, dict) and isinstance(existing.get("runs"), list):
        return [r for r in existing["runs"] if isinstance(r, dict)]
    if isinstance(existing, dict) and "benchmarks" in existing:
        # Pre-trajectory format: one raw google-benchmark report.
        legacy = {"sha": "pre-trajectory", "gemm_gflops": {}}
        for b in existing.get("benchmarks", []):
            legacy["gemm_gflops"][b["name"]] = round(
                2.0 * b.get("items_per_second", 0.0) / 1e9, 2)
        return [legacy]
    return []


def baseline_window(runs, sha):
    """The last BASELINE_WINDOW foreign, non-suspect entries (newest first).
    This SHA's own entries (and its dirty twin) never judge themselves."""
    base = sha[:-len("-dirty")] if sha.endswith("-dirty") else sha
    window = []
    for run in reversed(runs):
        run_sha = run.get("sha", "")
        if run_sha in (sha, base, base + "-dirty", "pre-trajectory"):
            continue
        if run.get("suspect"):
            continue
        if not run.get("gemm_gflops"):
            continue
        window.append(run)
        if len(window) == BASELINE_WINDOW:
            break
    return window


def median(values):
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    if n % 2:
        return ordered[n // 2]
    return 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])


def find_suspect_kernels(gflops, window):
    """Kernels implausibly below the recent trajectory median -> throttling."""
    bad = {}
    for name in GATE_KERNELS:
        new = gflops.get(name)
        history = [r["gemm_gflops"][name] for r in window
                   if r.get("gemm_gflops", {}).get(name)]
        if new is None or not history:
            continue
        med = median(history)
        if med > 0.0 and new < SUSPECT_FRACTION * med:
            bad[name] = (new, med)
    return bad


def report_suspects(bad):
    for name, (new, med) in bad.items():
        print(f"bench plausibility: {name}: {new:.1f} GFLOP/s is < "
              f"{100 * SUSPECT_FRACTION:.0f}% of the recent clean median "
              f"{med:.1f} — host throttling suspected")


def best_of_window(window):
    """Per-kernel best (value, sha) over the window — the gate baseline."""
    best = {}
    for run in window:
        for name in GATE_KERNELS:
            value = run.get("gemm_gflops", {}).get(name)
            if value and value > best.get(name, (0.0, ""))[0]:
                best[name] = (value, run.get("sha", "?"))
    return best


def check_gate(entry, window):
    best = best_of_window(window)
    if not best:
        print("bench gate: no prior clean entry to compare against; passing")
        return True
    ok = True
    for name in GATE_KERNELS:
        if name not in best:
            continue
        old, old_sha = best[name]
        new = entry["gemm_gflops"].get(name)
        if new is None:
            print(f"bench gate: {name} missing from this run (best of last "
                  f"{len(window)} clean: {old:.1f} GFLOP/s @ {old_sha}): FAIL")
            ok = False
            continue
        drop = 1.0 - new / old
        status = "FAIL" if drop > GATE_DROP_FRACTION else "ok"
        print(f"bench gate: {name}: {new:.1f} vs best-of-{len(window)} "
              f"{old:.1f} GFLOP/s (@ {old_sha}, drop {100.0 * drop:+.1f}%): "
              f"{status}")
        if drop > GATE_DROP_FRACTION:
            ok = False
    return ok


def render_summary(entry, window, path):
    """Markdown before/after summary of this run vs the clean baseline window."""
    lines = ["# Bench trajectory summary", "",
             f"Run `{entry['sha']}` at {entry.get('timestamp', '?')}."]
    if entry.get("suspect"):
        lines.append("")
        lines.append(f"**SUSPECT** — excluded from baselines: "
                     f"{entry.get('suspect_reason', '')}")
    lines += ["", "## Kernel throughput (gated)", "",
              "| kernel | this run (GFLOP/s) | best of recent clean | delta |",
              "|---|---|---|---|"]
    best = best_of_window(window)
    for name in GATE_KERNELS:
        new = entry["gemm_gflops"].get(name)
        if new is None:
            lines.append(f"| {name} | missing | — | — |")
            continue
        if name in best:
            old, old_sha = best[name]
            delta = f"{100.0 * (new / old - 1.0):+.1f}%"
            lines.append(f"| {name} | {new:.1f} | {old:.1f} (@ {old_sha}) | {delta} |")
        else:
            lines.append(f"| {name} | {new:.1f} | no clean baseline | — |")
    advisory = [
        ("table2_smoke", "Table 2 smoke (reference forward per precision)"),
        ("integrity_overhead", "Frame-integrity / heartbeat overhead"),
        ("overlap_hidden_comm", "Backward-overlapped comm split"),
        ("frozen_forward_saved", "Feature store: frozen forward eliminated"),
        ("tracer_overhead", "Span tracer: EGERIA_TRACE=1 wall-time cost"),
        ("diagnosis", "Trace diagnosis (bound class, overlap, straggler)"),
    ]
    lines += ["", "## Advisory records", ""]
    for key, title in advisory:
        value = entry.get(key)
        if value:
            lines.append(f"- **{title}**: `{json.dumps(value)}`")
    lines.append("")
    with open(path, "w") as f:
        f.write("\n".join(lines))
    print(f"summary rendered to {path}")


def main(argv):
    if len(argv) < 5:
        print(f"usage: {argv[0]} TRAJ_JSON BENCH_JSON TABLE2_TXT GIT_SHA "
              f"[--integrity=FILE] [--overlap=FILE] [--fig09=FILE] "
              f"[--trace=FILE] [--diagnose=FILE] [--render=FILE] [--gate] "
              f"[--check-only]",
              file=sys.stderr)
        return 2
    traj_path, bench_path, table2_path, sha = argv[1:5]
    gate = "--gate" in argv[5:]
    check_only = "--check-only" in argv[5:]
    integrity_path = None
    overlap_path = None
    fig09_path = None
    trace_path = None
    diagnose_path = None
    render_path = None
    for arg in argv[5:]:
        if arg.startswith("--integrity="):
            integrity_path = arg[len("--integrity="):]
        elif arg.startswith("--overlap="):
            overlap_path = arg[len("--overlap="):]
        elif arg.startswith("--fig09="):
            fig09_path = arg[len("--fig09="):]
        elif arg.startswith("--trace="):
            trace_path = arg[len("--trace="):]
        elif arg.startswith("--diagnose="):
            diagnose_path = arg[len("--diagnose="):]
        elif arg.startswith("--render="):
            render_path = arg[len("--render="):]
        elif arg not in ("--gate", "--check-only"):
            print(f"{argv[0]}: unknown argument {arg}", file=sys.stderr)
            return 2

    gflops = parse_benchmarks(bench_path)
    runs = load_runs(traj_path)
    window = baseline_window(runs, sha)
    suspects = find_suspect_kernels(gflops, window)

    if check_only:
        if suspects:
            report_suspects(suspects)
            print("bench plausibility: SUSPECT (exit 3; re-run the benchmark "
                  "once and record the second attempt)")
            return 3
        print("bench plausibility: ok")
        return 0

    entry = {
        "sha": sha,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "gemm_gflops": gflops,
        "table2_smoke": parse_table2(table2_path),
    }
    if suspects:
        report_suspects(suspects)
        entry["suspect"] = True
        entry["suspect_reason"] = "; ".join(
            f"{name} {new:.1f} < {100 * SUSPECT_FRACTION:.0f}% of clean "
            f"median {med:.1f} GFLOP/s"
            for name, (new, med) in suspects.items())
        print("bench plausibility: recording entry with suspect=true "
              "(excluded from gate baselines and future medians)")
    if integrity_path:
        entry["integrity_overhead"] = parse_integrity(integrity_path)
    if overlap_path:
        overlap = parse_overlap(overlap_path)
        if overlap is not None:
            entry["overlap_hidden_comm"] = overlap
    if fig09_path:
        fig09 = parse_fig09(fig09_path)
        if fig09 is not None:
            entry["frozen_forward_saved"] = fig09
    if trace_path:
        trace = parse_trace(trace_path)
        if trace is not None:
            entry["tracer_overhead"] = trace
    if diagnose_path:
        diagnosis = parse_diagnose(diagnose_path)
        if diagnosis is not None:
            entry["diagnosis"] = diagnosis

    if not runs:
        print("trajectory: empty or missing; this run seeds the first entry")

    # Replace this SHA's entry. A clean run supersedes ALL dirty entries, not
    # just its own pre-commit twin: commits land as new SHAs, so a dirty entry's
    # "own" clean run usually never happens and scratch numbers would otherwise
    # be permanent baselines.
    base = sha[:-len("-dirty")] if sha.endswith("-dirty") else sha
    drop = {sha, base + "-dirty"}
    if not sha.endswith("-dirty"):
        drop.update(r.get("sha", "") for r in runs
                    if r.get("sha", "").endswith("-dirty"))
    runs = [r for r in runs if r.get("sha") not in drop]
    runs.append(entry)
    with open(traj_path, "w") as f:
        json.dump({"schema": "egeria-bench-trajectory-v1", "runs": runs}, f, indent=2)
        f.write("\n")
    print(f"trajectory: {len(runs)} run(s) in {traj_path} (this run: {sha})")

    if render_path:
        render_summary(entry, window, render_path)

    if gate:
        if suspects:
            print("bench gate: run is marked suspect (throttled host?); "
                  "gate comparison skipped — the entry will not become a "
                  "baseline", file=sys.stderr)
        elif not check_gate(entry, window):
            print(f"bench gate: REGRESSION (> {100 * GATE_DROP_FRACTION:.0f}% "
                  f"drop vs best of last {len(window)} clean entries)",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
