#!/usr/bin/env python3
"""Append a benchmark run to the BENCH_gemm.json trajectory; optionally gate.

Usage:
    bench_trajectory.py TRAJ_JSON BENCH_JSON TABLE2_TXT GIT_SHA
        [--integrity=FILE] [--gate]

Parses the google-benchmark JSON report (BM_MatMul{,Fp16,Int8}/256) and the
table2 smoke output, then updates-or-appends a git-SHA-keyed entry in the
trajectory file (re-running on the same SHA replaces that SHA's entry; a clean
run supersedes its own pre-commit "-dirty" entry).

With --integrity=FILE, additionally parses bench/integrity_overhead train-mode
output (EGERIA_INTEGRITY_BENCH / EGERIA_HEARTBEAT_BENCH lines) into the entry,
so the frame-integrity and heartbeat tax on the fig10 TCP allreduce path is
tracked alongside the kernel numbers. Advisory only — shared-host distributed
timings are too noisy to gate on.

With --gate, additionally compares this run's GFLOP/s against the latest clean
(non-dirty, different-SHA) entry already in the trajectory — falling back to
the latest foreign "-dirty" entry when only pre-commit runs exist — and exits 1
if any tracked kernel dropped by more than GATE_DROP_FRACTION. The entry is
written either way, so the trajectory stays continuous even across a failing
gate.

Lives in its own file (not a shell heredoc) so `set -u` argv handling, exit
codes, and CI log capture are all ordinary — the script validates its own argv.
"""

import datetime
import json
import re
import sys

GATE_DROP_FRACTION = 0.15
GATE_KERNELS = ("BM_MatMul/256", "BM_MatMulFp16/256", "BM_MatMulInt8/256")


def parse_benchmarks(bench_path):
    with open(bench_path) as f:
        report = json.load(f)
    gflops = {}
    for b in report.get("benchmarks", []):
        value = 2.0 * b.get("items_per_second", 0.0) / 1e9
        gflops[b["name"]] = round(value, 2)
        print(f"{b['name']}: {value:.1f} GFLOP/s")
    return gflops


def parse_table2(table2_path):
    smoke = {}
    with open(table2_path) as f:
        for line in f:
            m = re.match(
                r"TABLE2_SMOKE precision=(\S+) ref_fwd_ms=([\d.]+) "
                r"speedup_vs_fp32=([\d.]+)", line)
            if m:
                smoke[m.group(1)] = {
                    "ref_fwd_ms": float(m.group(2)),
                    "speedup_vs_fp32": float(m.group(3)),
                }
            m = re.match(r"TABLE2_SMOKE fastest=(\S+)", line)
            if m:
                smoke["fastest"] = m.group(1)
    return smoke


def parse_integrity(path):
    overhead = {}
    keys = {
        "EGERIA_INTEGRITY_BENCH": "integrity",
        "EGERIA_HEARTBEAT_BENCH": "heartbeat",
    }
    with open(path) as f:
        for line in f:
            fields = line.split()
            if not fields or fields[0] not in keys:
                continue
            parsed = {}
            for kv in fields[1:]:
                k, _, v = kv.partition("=")
                try:
                    parsed[k] = float(v) if "." in v or "-" in v else int(v)
                except ValueError:
                    parsed[k] = v
            overhead[keys[fields[0]]] = parsed
            print(line.rstrip())
    return overhead


def load_runs(traj_path):
    try:
        with open(traj_path) as f:
            existing = json.load(f)
    except (OSError, ValueError):
        return []
    if isinstance(existing, dict) and "runs" in existing:
        return existing["runs"]
    if isinstance(existing, dict) and "benchmarks" in existing:
        # Pre-trajectory format: one raw google-benchmark report.
        legacy = {"sha": "pre-trajectory", "gemm_gflops": {}}
        for b in existing.get("benchmarks", []):
            legacy["gemm_gflops"][b["name"]] = round(
                2.0 * b.get("items_per_second", 0.0) / 1e9, 2)
        return [legacy]
    return []


def gate_baseline(runs, sha):
    """Latest clean entry that is not this SHA (nor its dirty twin); falls back
    to the latest foreign dirty entry so the gate is never vacuous just because
    the trajectory only holds pre-commit runs."""
    base = sha[:-len("-dirty")] if sha.endswith("-dirty") else sha
    fallback = None
    for run in reversed(runs):
        run_sha = run.get("sha", "")
        if run_sha in (sha, base, base + "-dirty", "pre-trajectory"):
            continue
        if not run.get("gemm_gflops"):
            continue
        if run_sha.endswith("-dirty"):
            fallback = fallback or run
            continue
        return run
    return fallback


def check_gate(entry, baseline):
    if baseline is None:
        print("bench gate: no prior entry to compare against; passing")
        return True
    ok = True
    for name in GATE_KERNELS:
        old = baseline["gemm_gflops"].get(name)
        new = entry["gemm_gflops"].get(name)
        if old is None or old <= 0.0:
            continue
        if new is None:
            print(f"bench gate: {name} missing from this run (baseline "
                  f"{baseline['sha']} had {old:.1f} GFLOP/s): FAIL")
            ok = False
            continue
        drop = 1.0 - new / old
        status = "FAIL" if drop > GATE_DROP_FRACTION else "ok"
        print(f"bench gate: {name}: {new:.1f} vs {old:.1f} GFLOP/s "
              f"(baseline {baseline['sha']}, drop {100.0 * drop:+.1f}%): {status}")
        if drop > GATE_DROP_FRACTION:
            ok = False
    return ok


def main(argv):
    if len(argv) < 5:
        print(f"usage: {argv[0]} TRAJ_JSON BENCH_JSON TABLE2_TXT GIT_SHA "
              f"[--integrity=FILE] [--gate]", file=sys.stderr)
        return 2
    traj_path, bench_path, table2_path, sha = argv[1:5]
    gate = "--gate" in argv[5:]
    integrity_path = None
    for arg in argv[5:]:
        if arg.startswith("--integrity="):
            integrity_path = arg[len("--integrity="):]
        elif arg != "--gate":
            print(f"{argv[0]}: unknown argument {arg}", file=sys.stderr)
            return 2

    entry = {
        "sha": sha,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "gemm_gflops": parse_benchmarks(bench_path),
        "table2_smoke": parse_table2(table2_path),
    }
    if integrity_path:
        entry["integrity_overhead"] = parse_integrity(integrity_path)

    runs = load_runs(traj_path)
    baseline = gate_baseline(runs, sha)

    # Replace this SHA's entry. A clean run supersedes ALL dirty entries, not
    # just its own pre-commit twin: commits land as new SHAs, so a dirty entry's
    # "own" clean run usually never happens and scratch numbers would otherwise
    # be permanent baselines.
    base = sha[:-len("-dirty")] if sha.endswith("-dirty") else sha
    drop = {sha, base + "-dirty"}
    if not sha.endswith("-dirty"):
        drop.update(r.get("sha", "") for r in runs
                    if r.get("sha", "").endswith("-dirty"))
    runs = [r for r in runs if r.get("sha") not in drop]
    runs.append(entry)
    with open(traj_path, "w") as f:
        json.dump({"schema": "egeria-bench-trajectory-v1", "runs": runs}, f, indent=2)
        f.write("\n")
    print(f"trajectory: {len(runs)} run(s) in {traj_path} (this run: {sha})")

    if gate and not check_gate(entry, baseline):
        print(f"bench gate: REGRESSION (> {100 * GATE_DROP_FRACTION:.0f}% drop)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
