#!/usr/bin/env bash
# Launch a multi-process egeria_worker world over the TCP transport.
#
# Usage: launch_dist.sh [-n WORLD] [-b WORKER_BIN] [-t TIMEOUT_S] [-l LOG_DIR]
#                       [-- worker-args...]
#
# Spawns WORLD worker processes sharing a fresh rendezvous file (the TCP
# transport binds port 0 and publishes the kernel-chosen port through it, so
# parallel invocations never collide), waits with a hard timeout, and fails
# loudly — per-rank logs are tailed on any error, and the script never hangs
# past TIMEOUT_S.
#
# Example (2-rank smoke on the tiny workload):
#   scripts/launch_dist.sh -n 2 -- --workload=tiny --epochs=2
set -euo pipefail

world=2
bin=""
timeout_s=300
log_dir=""
while getopts "n:b:t:l:" opt; do
  case "$opt" in
    n) world="$OPTARG" ;;
    b) bin="$OPTARG" ;;
    t) timeout_s="$OPTARG" ;;
    l) log_dir="$OPTARG" ;;
    *) echo "usage: $0 [-n world] [-b worker] [-t timeout_s] [-l log_dir] [-- args...]" >&2
       exit 2 ;;
  esac
done
shift $((OPTIND - 1))

repo_root=$(cd "$(dirname "$0")/.." && pwd)
if [ -z "$bin" ]; then
  bin="$repo_root/build/egeria_worker"
fi
if [ ! -x "$bin" ]; then
  echo "launch_dist.sh: worker binary not found: $bin (build the repo first)" >&2
  exit 2
fi
if [ -z "$log_dir" ]; then
  log_dir=$(mktemp -d "${TMPDIR:-/tmp}/egeria-dist-XXXXXX")
fi
mkdir -p "$log_dir"
rendezvous="$log_dir/rendezvous"
rm -f "$rendezvous"

echo "launch_dist.sh: world=$world logs=$log_dir"
pids=()
for ((r = 0; r < world; ++r)); do
  "$bin" --rank="$r" --world="$world" --rendezvous="$rendezvous" "$@" \
    > "$log_dir/rank_$r.log" 2>&1 &
  pids+=($!)
done

dump_logs() {
  for ((r = 0; r < world; ++r)); do
    echo "---- rank $r (tail) ----" >&2
    tail -n 20 "$log_dir/rank_$r.log" >&2 || true
  done
}

deadline=$((SECONDS + timeout_s))
while :; do
  live=0
  for pid in "${pids[@]}"; do
    if kill -0 "$pid" 2> /dev/null; then
      live=$((live + 1))
    fi
  done
  if [ "$live" -eq 0 ]; then
    break
  fi
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "launch_dist.sh: TIMEOUT after ${timeout_s}s; killing $live live rank(s)" >&2
    kill -9 "${pids[@]}" 2> /dev/null || true
    wait 2> /dev/null || true
    dump_logs
    exit 124
  fi
  sleep 0.1
done

failed=0
for ((r = 0; r < world; ++r)); do
  if ! wait "${pids[$r]}"; then
    echo "launch_dist.sh: rank $r exited nonzero" >&2
    failed=1
  fi
done
if [ "$failed" -ne 0 ]; then
  dump_logs
  exit 1
fi

grep -h "^EGERIA_RESULT" "$log_dir"/rank_*.log || true
echo "launch_dist.sh: OK"
