// Module-level semantics Egeria relies on beyond plain gradients: freeze flags,
// training/inference modes, attention masking, dropout determinism, embedding
// gradients, and state copying.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/nn/attention.h"
#include "src/nn/batchnorm.h"
#include "src/nn/blocks.h"
#include "src/nn/dropout.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/nn/sequential.h"
#include "src/nn/transformer_layers.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

TEST(ModuleSemantics, FreezeFlagRecursesIntoChildren) {
  Rng rng(1);
  auto block = std::make_unique<BasicResidualBlock>("b", 4, 4, 1, rng);
  block->SetFrozen(true);
  for (Module* child : block->Children()) {
    EXPECT_TRUE(child->frozen()) << child->name();
  }
  block->SetFrozen(false);
  for (Module* child : block->Children()) {
    EXPECT_FALSE(child->frozen());
  }
}

TEST(ModuleSemantics, FrozenBatchNormStopsUpdatingRunningStats) {
  Rng rng(2);
  BatchNorm2d bn("bn", 3);
  for (int i = 0; i < 4; ++i) {
    bn.Forward(Tensor::Randn({4, 3, 5, 5}, rng));
  }
  const Tensor mean_before = bn.running_mean().Clone();
  bn.SetFrozen(true);
  bn.Forward(Tensor::Randn({4, 3, 5, 5}, rng, 10.0F));
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(bn.running_mean().At(c), mean_before.At(c));
  }
}

TEST(ModuleSemantics, FrozenBatchNormOutputIsInputDeterministic) {
  // The cache-compatibility property (paper S4.3): a frozen BN gives the same
  // output for the same input regardless of what batch it appears in.
  Rng rng(3);
  BatchNorm2d bn("bn", 2);
  for (int i = 0; i < 3; ++i) {
    bn.Forward(Tensor::Randn({4, 2, 4, 4}, rng));
  }
  bn.SetFrozen(true);
  Tensor x = Tensor::Randn({2, 2, 4, 4}, rng);
  Tensor y1 = bn.Forward(x);
  bn.Forward(Tensor::Randn({2, 2, 4, 4}, rng, 5.0F));  // Unrelated batch between.
  Tensor y2 = bn.Forward(x);
  for (int64_t i = 0; i < y1.NumEl(); ++i) {
    EXPECT_EQ(y1.Data()[i], y2.Data()[i]);
  }
}

TEST(ModuleSemantics, DropoutDisabledWhenFrozenOrEval) {
  Rng rng(4);
  Dropout drop("d", 0.5F);
  Tensor x = Tensor::Ones({4, 8});
  drop.SetTraining(false);
  Tensor eval_out = drop.Forward(x);
  for (int64_t i = 0; i < x.NumEl(); ++i) {
    EXPECT_EQ(eval_out.Data()[i], 1.0F);
  }
  drop.SetTraining(true);
  drop.SetFrozen(true);
  Tensor frozen_out = drop.Forward(x);
  for (int64_t i = 0; i < x.NumEl(); ++i) {
    EXPECT_EQ(frozen_out.Data()[i], 1.0F);
  }
  drop.SetFrozen(false);
  Tensor train_out = drop.Forward(x);
  int zeros = 0;
  for (int64_t i = 0; i < x.NumEl(); ++i) {
    if (train_out.Data()[i] == 0.0F) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(train_out.Data()[i], 2.0F);  // Inverted scaling 1/(1-p).
    }
  }
  EXPECT_GT(zeros, 0);
}

TEST(ModuleSemantics, DropoutStepReplayIsDeterministic) {
  Rng rng(5);
  Tensor x = Tensor::Ones({4, 8});
  Dropout a("d", 0.5F, 99);
  Dropout b("d", 0.5F, 99);
  a.SetStep(7);
  b.SetStep(7);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < x.NumEl(); ++i) {
    EXPECT_EQ(ya.Data()[i], yb.Data()[i]);
  }
  // A different step yields a different mask.
  Dropout c("d", 0.5F, 99);
  c.SetStep(8);
  Tensor yc = c.Forward(x);
  int diff = 0;
  for (int64_t i = 0; i < x.NumEl(); ++i) {
    if (yc.Data()[i] != ya.Data()[i]) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 0);
}

TEST(ModuleSemantics, CausalMaskBlocksFutablePositions) {
  // Causal self-attention: output at position i must not depend on inputs j > i.
  Rng rng(6);
  MultiHeadAttention attn("a", 8, 2, rng);
  attn.SetTraining(false);
  Tensor x = Tensor::Randn({1, 4, 8}, rng);
  Tensor y1 = attn.Forward(x, x, /*causal=*/true);
  // Perturb the last position only.
  Tensor x2 = x.Clone();
  for (int64_t d = 0; d < 8; ++d) {
    x2.At(0, 3, d) += 10.0F;
  }
  Tensor y2 = attn.Forward(x2, x2, /*causal=*/true);
  for (int64_t t = 0; t < 3; ++t) {  // Earlier positions unchanged.
    for (int64_t d = 0; d < 8; ++d) {
      EXPECT_NEAR(y1.At(0, t, d), y2.At(0, t, d), 1e-4F) << "t=" << t;
    }
  }
  // Without the mask, earlier positions do change.
  Tensor u1 = attn.Forward(x, x, /*causal=*/false);
  Tensor u2 = attn.Forward(x2, x2, /*causal=*/false);
  double delta = 0.0;
  for (int64_t d = 0; d < 8; ++d) {
    delta += std::abs(u1.At(0, 0, d) - u2.At(0, 0, d));
  }
  EXPECT_GT(delta, 1e-3);
}

TEST(ModuleSemantics, CrossAttentionGradsSplitQueryAndMemory) {
  Rng rng(7);
  MultiHeadAttention attn("a", 8, 2, rng);
  Tensor q = Tensor::Randn({2, 3, 8}, rng);
  Tensor kv = Tensor::Randn({2, 5, 8}, rng);
  Tensor out = attn.Forward(q, kv, false);
  EXPECT_EQ(out.Size(1), 3);
  auto [dq, dkv] = attn.Backward(Tensor::Randn(out.Shape(), rng));
  EXPECT_EQ(dq.Size(1), 3);
  EXPECT_EQ(dkv.Size(1), 5);
  EXPECT_GT(dq.AbsMax(), 0.0F);
  EXPECT_GT(dkv.AbsMax(), 0.0F);
}

TEST(ModuleSemantics, EmbeddingGradAccumulatesPerToken) {
  Rng rng(8);
  Embedding embed("e", 6, 4, rng);
  Tensor ids = Tensor::FromVector({1, 3}, {2.0F, 2.0F, 5.0F});  // Token 2 twice.
  embed.Forward(ids);
  Tensor grad = Tensor::Ones({1, 3, 4});
  embed.Backward(grad);
  Parameter* w = embed.LocalParams()[0];
  for (int64_t d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(w->grad.At(2, d), 2.0F);  // Two occurrences accumulate.
    EXPECT_FLOAT_EQ(w->grad.At(5, d), 1.0F);
    EXPECT_FLOAT_EQ(w->grad.At(0, d), 0.0F);
  }
}

TEST(ModuleSemantics, ParametersAreUniqueAndNamed) {
  Rng rng(9);
  TransformerEncoderLayer layer("enc", 8, 2, 16, rng);
  auto params = layer.Parameters();
  std::set<Parameter*> unique(params.begin(), params.end());
  EXPECT_EQ(unique.size(), params.size());
  std::set<std::string> names;
  for (Parameter* p : params) {
    EXPECT_FALSE(p->name.empty());
    names.insert(p->name);
  }
  EXPECT_EQ(names.size(), params.size());
}

TEST(ModuleSemantics, CopyStateFromTransfersBatchNormStats) {
  Rng rng(10);
  auto a = std::make_unique<BasicResidualBlock>("b", 4, 4, 1, rng);
  auto b = std::make_unique<BasicResidualBlock>("b", 4, 4, 1, rng);
  for (int i = 0; i < 4; ++i) {
    a->Forward(Tensor::Randn({4, 4, 6, 6}, rng));
  }
  b->CopyStateFrom(*a);
  a->SetTraining(false);
  b->SetTraining(false);
  Tensor x = Tensor::Randn({2, 4, 6, 6}, rng);
  Tensor ya = a->Forward(x);
  Tensor yb = b->Forward(x);
  for (int64_t i = 0; i < ya.NumEl(); ++i) {
    EXPECT_EQ(ya.Data()[i], yb.Data()[i]);
  }
}

TEST(ModuleSemantics, SequentialReleaseTransfersOwnership) {
  Rng rng(11);
  Sequential seq("s");
  seq.Add(std::make_unique<Linear>("a", 4, 4, rng));
  seq.Add(std::make_unique<Linear>("b", 4, 4, rng));
  auto modules = seq.ReleaseModules();
  EXPECT_EQ(modules.size(), 2u);
  EXPECT_EQ(seq.size(), 0u);
  EXPECT_EQ(modules[0]->name(), "a");
}

}  // namespace
}  // namespace egeria
