// Backward-overlapped bucketed reduction (overlap_reducer.h): the tentpole
// bitwise contract. The overlapped per-stage bucket rounds must produce values,
// gradients, and momentum bitwise-identical to the sequential full-space round
// — at worlds 2/3/4, over BOTH transport backends, with empty buckets, bucket
// extents that do not divide by the world size, and (at harness level) mid-run
// freeze/reshard. Also covers the failure path (a corrupt frame mid-overlap
// surfaces as a typed error from FinishRound, never a hang) and the async
// checkpoint path (background writes persist bitwise-identical state).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/distributed/allreduce.h"
#include "src/distributed/dist_trainer.h"
#include "src/distributed/dist_workload.h"
#include "src/distributed/flat_view.h"
#include "src/distributed/overlap_reducer.h"
#include "src/distributed/transport/fault_injection.h"
#include "src/distributed/transport/inproc_transport.h"
#include "src/distributed/transport/integrity_transport.h"
#include "src/distributed/transport/tcp_transport.h"
#include "src/optim/sharded_optimizer.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

enum class TransportCase { kInproc, kTcp };

const char* TransportName(TransportCase c) {
  return c == TransportCase::kInproc ? "inproc" : "tcp";
}

// Runs `body(rank, transport)` on `world` rank threads wired by the given
// transport backend.
void RunWorld(TransportCase kind, int world,
              const std::function<void(int, Transport&)>& body) {
  std::vector<std::thread> threads;
  if (kind == TransportCase::kInproc) {
    InprocTransportGroup group(world);
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] { body(r, group.Get(r)); });
    }
    for (auto& t : threads) {
      t.join();
    }
    return;
  }
  char tmpl[] = "/tmp/egeria-overlap-test-XXXXXX";
  ASSERT_NE(nullptr, mkdtemp(tmpl));
  const std::string rendezvous = std::string(tmpl) + "/rendezvous";
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      TcpTransportOptions opts;
      opts.rank = r;
      opts.world = world;
      opts.rendezvous_file = rendezvous;
      opts.io_timeout_s = 30.0;  // backstop: these tests must not hang
      std::unique_ptr<Transport> transport = MakeTcpTransport(opts);
      body(r, *transport);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  unlink(rendezvous.c_str());
  rmdir(tmpl);
}

using ParamSet = std::vector<std::unique_ptr<Parameter>>;

// One replica: values identical across ranks (replicas start in sync), grads
// distinct per (rank, round). Sizes may be zero — an empty bucket.
ParamSet MakeReplica(const std::vector<int64_t>& sizes, int rank) {
  ParamSet set;
  for (size_t i = 0; i < sizes.size(); ++i) {
    auto p = std::make_unique<Parameter>("p" + std::to_string(i),
                                         Tensor::Zeros({std::max<int64_t>(sizes[i], 0)}));
    Rng vrng(1000 + static_cast<uint64_t>(i));  // same values on every rank
    for (int64_t j = 0; j < sizes[i]; ++j) {
      p->value.At(j) = vrng.NextUniform(-1.0F, 1.0F);
    }
    (void)rank;
    set.push_back(std::move(p));
  }
  return set;
}

void FillGrads(ParamSet& set, int rank, int round) {
  for (size_t i = 0; i < set.size(); ++i) {
    Rng grng(17 + static_cast<uint64_t>(rank) * 131 +
             static_cast<uint64_t>(round) * 1009 + static_cast<uint64_t>(i));
    for (int64_t j = 0; j < set[i]->grad.NumEl(); ++j) {
      set[i]->grad.At(j) = grng.NextUniform(-2.0F, 2.0F);
    }
  }
}

std::vector<Parameter*> Raw(const ParamSet& set) {
  std::vector<Parameter*> out;
  for (const auto& p : set) {
    out.push_back(p.get());
  }
  return out;
}

std::vector<OverlapReducer::Bucket> StageBuckets(const std::vector<int64_t>& sizes) {
  std::vector<OverlapReducer::Bucket> buckets;
  int64_t offset = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    buckets.push_back(
        OverlapReducer::Bucket{static_cast<int>(i), offset, offset + sizes[i]});
    offset += sizes[i];
  }
  return buckets;
}

// The core pin: several overlapped rounds (momentum accumulating across
// rounds) against the sequential full-space rounds, every world size, both
// backends, with an empty bucket in the middle and a total (29) that no
// tested world size divides.
TEST(OverlapReducerBitwise, BucketRoundsMatchSequentialFullSpaceRounds) {
  const std::vector<int64_t> sizes = {5, 7, 0, 3, 11, 2, 1};  // total 29
  const int rounds = 3;
  const float lr = 0.05F;
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    for (int world : {2, 3, 4}) {
      // Per-rank final states, gathered for cross-path comparison.
      std::vector<std::vector<float>> overlap_values(static_cast<size_t>(world));
      std::vector<std::vector<float>> seq_values(static_cast<size_t>(world));
      std::vector<std::vector<float>> overlap_grads(static_cast<size_t>(world));
      std::vector<std::vector<float>> seq_grads(static_cast<size_t>(world));

      auto run = [&](bool overlapped, std::vector<std::vector<float>>& out_values,
                     std::vector<std::vector<float>>& out_grads) {
        RunWorld(kind, world, [&](int rank, Transport& transport) {
          ParamSet set = MakeReplica(sizes, rank);
          std::vector<Parameter*> params = Raw(set);
          FlatParamView grads(params, FlatParamView::Field::kGrad);
          FlatParamView values(params, FlatParamView::Field::kValue);
          RingAllReducer ring(transport);
          ShardedSgd opt(0.9F, 1e-4F);
          std::pair<int64_t, int64_t> shard{0, 0};
          ASSERT_TRUE(opt.Reshard(transport, 0, values.NumEl(), &shard).ok());
          OverlapReducer reducer(transport, ring, opt);
          for (int round = 0; round < rounds; ++round) {
            FillGrads(set, rank, round);
            if (overlapped) {
              reducer.BeginRound(&grads, &values, StageBuckets(sizes),
                                 shard.first, shard.second, lr);
              // Stand-in for backward: notify deep-to-front (ready sets grow
              // as suffixes of the bucket order), with rank-skewed pacing so
              // the agreement scheduler sees genuinely divergent ready sets.
              for (int stage = static_cast<int>(sizes.size()) - 1; stage >= 0;
                   --stage) {
                if ((rank + round + stage) % world == 0) {
                  usleep(300);
                }
                reducer.NotifyStageReady(stage);
              }
              ASSERT_TRUE(reducer.FinishRound().ok())
                  << TransportName(kind) << " world " << world;
            } else {
              ASSERT_TRUE(ring.ReduceScatterAverage(grads, nullptr).ok());
              opt.Step(values, grads, shard.first, shard.second, lr);
              ASSERT_TRUE(ring.AllGather(values).ok());
            }
          }
          std::vector<float> v(static_cast<size_t>(values.NumEl()));
          std::vector<float> g(static_cast<size_t>(grads.NumEl()));
          values.CopyOut(0, values.NumEl(), v.data());
          grads.CopyOut(0, grads.NumEl(), g.data());
          out_values[static_cast<size_t>(rank)] = std::move(v);
          out_grads[static_cast<size_t>(rank)] = std::move(g);
        });
      };
      run(true, overlap_values, overlap_grads);
      run(false, seq_values, seq_grads);

      for (int r = 0; r < world; ++r) {
        ASSERT_EQ(overlap_values[static_cast<size_t>(r)].size(),
                  seq_values[static_cast<size_t>(r)].size());
        EXPECT_EQ(0, std::memcmp(overlap_values[static_cast<size_t>(r)].data(),
                                 seq_values[static_cast<size_t>(r)].data(),
                                 overlap_values[static_cast<size_t>(r)].size() *
                                     sizeof(float)))
            << "values diverged: " << TransportName(kind) << " world " << world
            << " rank " << r;
        EXPECT_EQ(0, std::memcmp(overlap_grads[static_cast<size_t>(r)].data(),
                                 seq_grads[static_cast<size_t>(r)].data(),
                                 overlap_grads[static_cast<size_t>(r)].size() *
                                     sizeof(float)))
            << "reduced grads diverged: " << TransportName(kind) << " world "
            << world << " rank " << r;
        // All replicas identical after the all-gather (both paths).
        EXPECT_EQ(overlap_values[static_cast<size_t>(r)],
                  overlap_values[0]);
      }
    }
  }
}

// Harness-level pin over whole freezing training runs: overlap on vs off vs
// the sequential reference reducer, with the Egeria controller moving the
// frontier mid-run (buckets leave the schedule as stages freeze, shards
// repartition). Worlds 2/3/4, and the overlapped path again over real TCP.
TEST(OverlapTrainer, FreezingRunBitwiseAcrossOverlapModesAndTransports) {
  for (int world : {2, 3, 4}) {
    SCOPED_TRACE("world " + std::to_string(world));
    auto run = [&](DistTrainConfig::Reducer reducer, bool overlap,
                   DistTrainConfig::TransportKind transport) {
      DistWorkload w = MakeDistWorkload("tiny");
      w.cfg.world = world;
      w.cfg.enable_egeria = true;
      w.cfg.reducer = reducer;
      w.cfg.overlap_comm = overlap;
      w.cfg.transport = transport;
      // One bucket per stage (no coalescing): the harness-level pin must
      // drive the multi-bucket agreement path, not a single merged round.
      w.cfg.overlap_min_bucket_elems = 0;
      return TrainDataParallel(w.make_model, *w.train, *w.val, w.cfg);
    };
    const DistTrainResult ref =
        run(DistTrainConfig::Reducer::kSequentialReference, false,
            DistTrainConfig::TransportKind::kInproc);
    const DistTrainResult seq = run(DistTrainConfig::Reducer::kRingSharded, false,
                                    DistTrainConfig::TransportKind::kInproc);
    const DistTrainResult ovl = run(DistTrainConfig::Reducer::kRingSharded, true,
                                    DistTrainConfig::TransportKind::kInproc);
    const DistTrainResult tcp = run(DistTrainConfig::Reducer::kRingSharded, true,
                                    DistTrainConfig::TransportKind::kTcp);

    ASSERT_TRUE(ref.replicas_consistent);
    ASSERT_TRUE(seq.replicas_consistent);
    ASSERT_TRUE(ovl.replicas_consistent);
    ASSERT_TRUE(tcp.replicas_consistent);
    EXPECT_GT(ovl.final_frontier, 0)
        << "controller froze nothing; the mid-run reshard path went untested";
    EXPECT_EQ(ovl.params_hash, ref.params_hash) << "overlap vs reference";
    EXPECT_EQ(ovl.params_hash, seq.params_hash) << "overlap vs sequential ring";
    EXPECT_EQ(tcp.params_hash, ovl.params_hash) << "overlap inproc vs tcp";
    EXPECT_EQ(ovl.final_frontier, ref.final_frontier);
    EXPECT_EQ(ovl.bytes_synced, seq.bytes_synced);
    // Same collectives, same wire: overlapping changes when bytes move, not
    // how many (modulo the agreement frames, counted outside the ring).
    EXPECT_EQ(ovl.wire_bytes, seq.wire_bytes);
  }
}

// Failure path: a frame corrupted mid-overlap (the comm thread is inside a
// bucket round when the integrity layer trips) must surface as a typed error
// from FinishRound on the affected ranks and unwind every rank — no hang, no
// crash, no partial state consumed.
TEST(OverlapReducerFaults, CorruptFrameMidOverlapSurfacesTypedErrorEverywhere) {
  const std::vector<int64_t> sizes = {5, 7, 3, 11, 2, 1};
  const int world = 3;
  const int faulty = 1;
  FaultPlan plan;
  std::string perror;
  ASSERT_TRUE(FaultPlan::Parse("corrupt:1", world, faulty, &plan, &perror))
      << perror;
  std::vector<TransportStatus> finish(static_cast<size_t>(world));
  RunWorld(TransportCase::kInproc, world, [&](int rank, Transport& base) {
    FaultPlan mine = rank == faulty ? plan : FaultPlan{};
    FaultInjectingTransport injector(&base, mine);
    IntegrityTransport checked(&injector);
    injector.BeginIteration(1);
    ParamSet set = MakeReplica(sizes, rank);
    std::vector<Parameter*> params = Raw(set);
    FillGrads(set, rank, 0);
    FlatParamView grads(params, FlatParamView::Field::kGrad);
    FlatParamView values(params, FlatParamView::Field::kValue);
    RingAllReducer ring(checked);
    ShardedSgd opt(0.9F, 1e-4F);
    std::pair<int64_t, int64_t> shard{0, 0};
    const TransportStatus rs = opt.Reshard(checked, 0, values.NumEl(), &shard);
    if (!rs.ok()) {
      finish[static_cast<size_t>(rank)] = rs;  // fault hit the reshard itself
      return;
    }
    OverlapReducer reducer(checked, ring, opt);
    reducer.BeginRound(&grads, &values, StageBuckets(sizes), shard.first,
                       shard.second, 0.05F);
    for (int stage = static_cast<int>(sizes.size()) - 1; stage >= 0; --stage) {
      reducer.NotifyStageReady(stage);
    }
    finish[static_cast<size_t>(rank)] = reducer.FinishRound();
  });
  // Every rank unwound with a typed error (the corrupting rank's neighbor
  // detects the checksum; the poisoned group aborts the rest).
  int checksum_reports = 0;
  for (int r = 0; r < world; ++r) {
    const TransportStatus& st = finish[static_cast<size_t>(r)];
    EXPECT_FALSE(st.ok()) << "rank " << r << " never observed the corruption";
    EXPECT_TRUE(st.code == TransportError::kChecksum ||
                st.code == TransportError::kSequence ||
                st.code == TransportError::kAborted ||
                st.code == TransportError::kPeerClosed)
        << "rank " << r << ": " << st.message;
    if (st.code == TransportError::kChecksum) {
      ++checksum_reports;
    }
  }
  EXPECT_GE(checksum_reports, 1) << "nobody attributed the corrupt frame";
}

// Async checkpointing persists bitwise the same bytes the inline save would
// have: same manifests (per-file sizes AND content hashes), and a resume from
// either reproduces the uninterrupted run exactly.
TEST(AsyncCheckpoint, BackgroundSavePersistsBitwiseIdenticalState) {
  auto make_dir = [](const std::string& label) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / ("egeria-" + label + "-XXXXXX"))
            .string();
    EXPECT_NE(nullptr, mkdtemp(tmpl.data()));
    return tmpl;
  };
  const std::string dir_async = make_dir("async");
  const std::string dir_sync = make_dir("sync");

  auto stage = [&](const std::string& dir, bool async_save) {
    DistWorkload w = MakeDistWorkload("tiny");
    w.cfg.world = 3;
    w.cfg.enable_egeria = true;
    w.cfg.ckpt.dir = dir;
    w.cfg.ckpt.interval_iters = 4;
    w.cfg.ckpt.async_save = async_save;
    w.cfg.stop_after_iters = 10;
    return TrainDataParallel(w.make_model, *w.train, *w.val, w.cfg);
  };
  const DistTrainResult a = stage(dir_async, true);
  const DistTrainResult s = stage(dir_sync, false);
  ASSERT_TRUE(a.stopped_early);
  ASSERT_TRUE(s.stopped_early);
  EXPECT_EQ(a.params_hash, s.params_hash);

  const auto ma = FindLatestCheckpoint(dir_async);
  const auto ms = FindLatestCheckpoint(dir_sync);
  ASSERT_TRUE(ma.has_value());
  ASSERT_TRUE(ms.has_value());
  EXPECT_EQ(ma->iter, 10);
  EXPECT_EQ(ms->iter, ma->iter);
  // Same files, same bytes, same content hashes — capture-then-background
  // write changed WHEN the bytes landed, not WHICH bytes.
  std::map<std::string, std::pair<int64_t, uint64_t>> af;
  for (const ManifestFile& f : ma->files) {
    af[f.name] = {f.bytes, f.fnv};
  }
  ASSERT_EQ(ms->files.size(), af.size());
  for (const ManifestFile& f : ms->files) {
    const auto it = af.find(f.name);
    ASSERT_NE(it, af.end()) << "async manifest missing " << f.name;
    EXPECT_EQ(it->second.first, f.bytes) << f.name;
    if (f.name == "controller.state") {
      // Serializes measured eval wall-seconds — nondeterministic between ANY
      // two runs (sync included), so content equality is not expected here.
      continue;
    }
    EXPECT_EQ(it->second.second, f.fnv)
        << f.name << " persisted different bytes under the async writer";
  }

  // Both resumes continue to the same final weights as each other.
  auto resume = [&](const std::string& dir, bool async_save) {
    DistWorkload w = MakeDistWorkload("tiny");
    w.cfg.world = 3;
    w.cfg.enable_egeria = true;
    w.cfg.ckpt.dir = dir;
    w.cfg.ckpt.interval_iters = 4;
    w.cfg.ckpt.async_save = async_save;
    return TrainDataParallel(w.make_model, *w.train, *w.val, w.cfg);
  };
  const DistTrainResult ra = resume(dir_async, true);
  const DistTrainResult rs = resume(dir_sync, false);
  EXPECT_EQ(ra.resumed_from_iter, 10);
  EXPECT_EQ(rs.resumed_from_iter, 10);
  EXPECT_TRUE(ra.replicas_consistent);
  EXPECT_EQ(ra.params_hash, rs.params_hash)
      << "async-saved checkpoint resumed to different weights";
  std::filesystem::remove_all(dir_async);
  std::filesystem::remove_all(dir_sync);
}

}  // namespace
}  // namespace egeria
