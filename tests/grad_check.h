// Finite-difference gradient checking for Module implementations.
//
// Strategy: fix a random projection tensor R and define the scalar loss
// L = <Forward(x), R>. The analytic gradients are obtained by Backward(R); the
// numeric ones by central differences on (a sample of) parameter and input entries.
#ifndef EGERIA_TESTS_GRAD_CHECK_H_
#define EGERIA_TESTS_GRAD_CHECK_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "src/nn/module.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace egeria {
namespace testing {

struct GradCheckResult {
  double max_rel_error = 0.0;
  double mean_rel_error = 0.0;
  int checked = 0;
};

// Relative error with an absolute floor at the float32 numeric-noise level.
//
// The floor matters: central differences on a float32 forward pass carry noise of
// roughly |loss| * 1e-6 / (2*eps) ~ 5e-3 in the numeric gradient. Parameters whose
// true gradient is below that (e.g. a BN gamma sandwiched between normalizations,
// which is scale-invariant and has an exactly-zero gradient) would otherwise compare
// noise against noise and report spurious mismatches.
inline double RelError(double analytic, double numeric) {
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 2e-2});
  return std::abs(analytic - numeric) / denom;
}

// forward() must re-run the full forward pass and return the scalar loss <out, R>.
// entries: pointers to the scalars being perturbed paired with their analytic grads.
inline GradCheckResult NumericCheck(const std::function<double()>& forward,
                                    const std::vector<std::pair<float*, float>>& entries,
                                    double eps = 3e-3) {
  GradCheckResult result;
  double total = 0.0;
  for (const auto& [ptr, analytic] : entries) {
    const float saved = *ptr;
    *ptr = saved + static_cast<float>(eps);
    const double up = forward();
    *ptr = saved - static_cast<float>(eps);
    const double down = forward();
    *ptr = saved;
    const double numeric = (up - down) / (2.0 * eps);
    const double err = RelError(analytic, numeric);
    result.max_rel_error = std::max(result.max_rel_error, err);
    total += err;
    ++result.checked;
  }
  if (result.checked > 0) {
    result.mean_rel_error = total / result.checked;
  }
  return result;
}

// Full check of a single-input module: parameters and input gradient.
// `max_per_tensor` caps how many entries are sampled from each tensor.
inline GradCheckResult CheckModuleGradients(Module& module, Tensor input, uint64_t seed,
                                            double eps = 3e-3, int max_per_tensor = 12) {
  Rng rng(seed);
  module.SetTraining(true);

  // Fixed projection for the scalar loss.
  Tensor first_out = module.Forward(input);
  Tensor proj = Tensor::Randn(first_out.Shape(), rng);

  auto forward_loss = [&]() -> double {
    Tensor out = module.Forward(input);
    double s = 0.0;
    for (int64_t i = 0; i < out.NumEl(); ++i) {
      s += static_cast<double>(out.Data()[i]) * proj.Data()[i];
    }
    return s;
  };

  // Analytic gradients.
  module.ZeroGrad();
  forward_loss();  // Ensure caches correspond to the current state.
  Tensor dinput = module.Backward(proj);

  std::vector<std::pair<float*, float>> entries;
  for (Parameter* p : module.Parameters()) {
    const int64_t n = p->value.NumEl();
    const int64_t step = std::max<int64_t>(1, n / max_per_tensor);
    for (int64_t i = 0; i < n; i += step) {
      entries.emplace_back(p->value.Data() + i, p->grad.Data()[i]);
    }
  }
  if (dinput.Defined() && dinput.NumEl() == input.NumEl()) {
    const int64_t n = input.NumEl();
    const int64_t step = std::max<int64_t>(1, n / max_per_tensor);
    for (int64_t i = 0; i < n; i += step) {
      entries.emplace_back(input.Data() + i, dinput.Data()[i]);
    }
  }
  return NumericCheck(forward_loss, entries, eps);
}

}  // namespace testing
}  // namespace egeria

#endif  // EGERIA_TESTS_GRAD_CHECK_H_
