// Optimizers, LR schedules, and loss functions.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/loss.h"
#include "src/optim/lr_scheduler.h"
#include "src/optim/optimizer.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

// Minimizing f(w) = 0.5 * ||w - target||^2 converges for both optimizers.
template <typename Opt>
double OptimizeQuadratic(Opt& opt, float lr, int steps) {
  Parameter w("w", Tensor::FromVector({3}, {5.0F, -4.0F, 2.0F}));
  const std::vector<float> target{1.0F, 2.0F, 3.0F};
  for (int s = 0; s < steps; ++s) {
    for (int64_t i = 0; i < 3; ++i) {
      w.grad.At(i) = w.value.At(i) - target[static_cast<size_t>(i)];
    }
    opt.Step({&w}, lr);
    w.grad.Zero_();
  }
  double err = 0;
  for (int64_t i = 0; i < 3; ++i) {
    err += std::abs(w.value.At(i) - target[static_cast<size_t>(i)]);
  }
  return err;
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  Sgd opt(/*momentum=*/0.0F, /*weight_decay=*/0.0F);
  EXPECT_LT(OptimizeQuadratic(opt, 0.2F, 100), 1e-3);
}

TEST(Optimizer, SgdMomentumConverges) {
  Sgd opt(0.9F, 0.0F);
  EXPECT_LT(OptimizeQuadratic(opt, 0.05F, 200), 1e-3);
}

TEST(Optimizer, AdamConverges) {
  Adam opt;
  EXPECT_LT(OptimizeQuadratic(opt, 0.1F, 400), 1e-2);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Sgd opt(0.0F, 0.5F);
  Parameter w("w", Tensor::FromVector({1}, {2.0F}));
  w.grad.Zero_();
  opt.Step({&w}, 0.1F);
  EXPECT_NEAR(w.value.At(0), 2.0F - 0.1F * 0.5F * 2.0F, 1e-6F);
}

TEST(Optimizer, MomentumStateSurvivesActiveSetChanges) {
  // Freezing removes a parameter from Step() calls; momentum must resume intact when
  // the parameter returns (unfreezing).
  Sgd opt(0.9F, 0.0F);
  Parameter a("a", Tensor::FromVector({1}, {1.0F}));
  Parameter b("b", Tensor::FromVector({1}, {1.0F}));
  a.grad.Fill_(1.0F);
  b.grad.Fill_(1.0F);
  opt.Step({&a, &b}, 0.1F);
  const float va = a.value.At(0);
  // Step only b (a "frozen") several times, then bring a back.
  for (int i = 0; i < 3; ++i) {
    b.grad.Fill_(1.0F);
    opt.Step({&b}, 0.1F);
  }
  a.grad.Fill_(0.0F);
  opt.Step({&a, &b}, 0.1F);
  // With zero grad, a still moves by momentum * old velocity.
  EXPECT_NEAR(a.value.At(0), va - 0.1F * 0.9F * 1.0F, 1e-6F);
}

TEST(Optimizer, ReleaseStateFreesMemoryAndRestartsFromZero) {
  Sgd opt(0.9F, 0.0F);
  Parameter a("a", Tensor::FromVector({3}, {1.0F, 1.0F, 1.0F}));
  a.grad.Fill_(1.0F);
  opt.Step({&a}, 0.1F);
  EXPECT_EQ(opt.StateBytes(), 3 * static_cast<int64_t>(sizeof(float)));
  opt.ReleaseState({&a});
  EXPECT_EQ(opt.StateBytes(), 0);
  // Released velocity restarts at zero: a zero-gradient step no longer coasts.
  const float w = a.value.At(0);
  a.grad.Fill_(0.0F);
  opt.Step({&a}, 0.1F);
  EXPECT_FLOAT_EQ(a.value.At(0), w);
}

TEST(Optimizer, AdamStateBytesAndRelease) {
  Adam opt;
  Parameter a("a", Tensor::FromVector({2}, {1.0F, 2.0F}));
  a.grad.Fill_(0.5F);
  opt.Step({&a}, 0.01F);
  // Adam holds two moments per element.
  EXPECT_EQ(opt.StateBytes(), 2 * 2 * static_cast<int64_t>(sizeof(float)));
  opt.ReleaseState({&a});
  EXPECT_EQ(opt.StateBytes(), 0);
}

TEST(LrSchedule, StepDecayMilestones) {
  StepDecayLr lr(1.0F, 0.1F, {100, 200});
  EXPECT_FLOAT_EQ(lr.LrAt(50), 1.0F);
  EXPECT_FLOAT_EQ(lr.LrAt(100), 0.1F);
  EXPECT_FLOAT_EQ(lr.LrAt(150), 0.1F);
  EXPECT_NEAR(lr.LrAt(250), 0.01F, 1e-7F);
  EXPECT_TRUE(lr.IsAnnealing());
}

TEST(LrSchedule, InverseSqrtWarmupAndDecay) {
  InverseSqrtLr lr(2.0F, 10);
  EXPECT_NEAR(lr.LrAt(4), 2.0F * 0.5F, 1e-6F);  // Warmup ramp.
  EXPECT_NEAR(lr.LrAt(9), 2.0F, 1e-6F);
  EXPECT_NEAR(lr.LrAt(39), 1.0F, 1e-6F);  // sqrt(10/40) = 0.5.
}

TEST(LrSchedule, LinearDecayReachesZero) {
  LinearDecayLr lr(1.0F, 100);
  EXPECT_FLOAT_EQ(lr.LrAt(0), 1.0F);
  EXPECT_NEAR(lr.LrAt(50), 0.5F, 1e-6F);
  EXPECT_FLOAT_EQ(lr.LrAt(100), 0.0F);
  EXPECT_FLOAT_EQ(lr.LrAt(200), 0.0F);
}

TEST(LrSchedule, CosineAndCyclicalOscillate) {
  CosineAnnealingLr cos_lr(1.0F, 0.1F, 100);
  EXPECT_NEAR(cos_lr.LrAt(0), 1.0F, 1e-5F);
  EXPECT_NEAR(cos_lr.LrAt(50), 0.55F, 1e-2F);
  EXPECT_FALSE(cos_lr.IsAnnealing());

  CyclicalLr cyc(0.1F, 1.0F, 50);
  EXPECT_NEAR(cyc.LrAt(0), 0.1F, 1e-5F);
  EXPECT_NEAR(cyc.LrAt(50), 1.0F, 1e-5F);
  EXPECT_NEAR(cyc.LrAt(100), 0.1F, 1e-5F);
}

TEST(Loss, CrossEntropyGradientIsSoftmaxMinusOneHot) {
  Rng rng(1);
  Tensor logits = Tensor::Randn({2, 4}, rng);
  LossResult r = SoftmaxCrossEntropy(logits, {1, 3});
  // Row sums of the gradient are zero (softmax sums to 1, one-hot sums to 1).
  for (int64_t i = 0; i < 2; ++i) {
    double sum = 0;
    for (int64_t j = 0; j < 4; ++j) {
      sum += r.grad.At(i, j);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
    EXPECT_LT(r.grad.At(i, (i == 0) ? 1 : 3), 0.0F);  // True class pulls up.
  }
  EXPECT_GT(r.loss, 0.0F);
}

TEST(Loss, NumericGradientCheck) {
  Rng rng(2);
  Tensor logits = Tensor::Randn({3, 5}, rng);
  std::vector<int> labels{0, 2, 4};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  for (int64_t i = 0; i < logits.NumEl(); i += 3) {
    const double eps = 1e-3;
    float* p = logits.Data() + i;
    const float saved = *p;
    *p = saved + static_cast<float>(eps);
    const double up = SoftmaxCrossEntropy(logits, labels).loss;
    *p = saved - static_cast<float>(eps);
    const double down = SoftmaxCrossEntropy(logits, labels).loss;
    *p = saved;
    EXPECT_NEAR(r.grad.Data()[i], (up - down) / (2 * eps), 1e-3);
  }
}

TEST(Loss, LabelSmoothingIncreasesLossOnConfidentCorrect) {
  Tensor logits = Tensor::FromVector({1, 3}, {10.0F, 0.0F, 0.0F});
  const float plain = SoftmaxCrossEntropy(logits, {0}, 0.0F).loss;
  const float smoothed = SoftmaxCrossEntropy(logits, {0}, 0.1F).loss;
  EXPECT_GT(smoothed, plain);
}

TEST(Loss, IgnoreLabelSkipsRows) {
  Rng rng(3);
  Tensor logits = Tensor::Randn({2, 3, 4}, rng);
  std::vector<int> labels{1, kIgnoreLabel, 2, kIgnoreLabel, kIgnoreLabel, 0};
  LossResult r = SequenceCrossEntropy(logits, labels);
  // Ignored rows get zero gradient.
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(r.grad.At(0, 1, j), 0.0F);
  }
  EXPECT_GT(r.loss, 0.0F);
}

TEST(Loss, PixelwiseMatchesRowwiseOnTransposedLayout) {
  Rng rng(4);
  Tensor logits = Tensor::Randn({1, 3, 2, 2}, rng);
  std::vector<int> labels{0, 1, 2, 1};
  LossResult pix = PixelwiseCrossEntropy(logits, labels);
  // Manually rearrange to rows and compare loss.
  Tensor rows({4, 3});
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t i = 0; i < 4; ++i) {
      rows.At(i, c) = logits.Data()[c * 4 + i];
    }
  }
  LossResult ref = SoftmaxCrossEntropy(rows, labels);
  EXPECT_NEAR(pix.loss, ref.loss, 1e-6F);
}

TEST(Loss, SpanLossAndF1) {
  Tensor logits({1, 5, 2});
  logits.Fill_(-3.0F);
  logits.At(0, 1, 0) = 5.0F;  // start at 1
  logits.At(0, 3, 1) = 5.0F;  // end at 3
  LossResult exact = SpanLoss(logits, {{1, 3}});
  LossResult wrong = SpanLoss(logits, {{0, 4}});
  EXPECT_LT(exact.loss, wrong.loss);
  EXPECT_NEAR(SpanF1(logits, {{1, 3}}), 1.0, 1e-9);
  EXPECT_NEAR(SpanF1(logits, {{2, 4}}), 2.0 * (2.0 / 3.0) * (2.0 / 3.0) / (4.0 / 3.0),
              1e-9);
  EXPECT_EQ(SpanF1(logits, {{4, 4}}), 0.0);
}

TEST(Loss, MetricsOnCraftedLogits) {
  Tensor logits = Tensor::FromVector({2, 2}, {5.0F, 0.0F, 0.0F, 5.0F});
  EXPECT_DOUBLE_EQ(TopOneAccuracy(logits, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(TopOneAccuracy(logits, {1, 1}), 0.5);
  // Perplexity of a uniform predictor over V classes is V.
  Tensor uniform = Tensor::Zeros({1, 4, 8});
  std::vector<int> labels(4, 3);
  EXPECT_NEAR(Perplexity(uniform, labels), 8.0, 1e-3);
}

TEST(Loss, MeanIoUPerfectAndPartial) {
  // 2 classes over 4 pixels; logits argmax = {0,0,1,1}.
  Tensor logits = Tensor::FromVector({1, 2, 2, 2},
                                     {5.0F, 5.0F, 0.0F, 0.0F, 0.0F, 0.0F, 5.0F, 5.0F});
  EXPECT_DOUBLE_EQ(MeanIoU(logits, {0, 0, 1, 1}, 2), 1.0);
  // One mislabeled pixel: class0 IoU = 1/2, class1 IoU = 2/3.
  EXPECT_NEAR(MeanIoU(logits, {0, 1, 1, 1}, 2), 0.5 * (0.5 + 2.0 / 3.0), 1e-9);
}

}  // namespace
}  // namespace egeria
