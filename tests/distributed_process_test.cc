// Multi-process distributed training: ranks as real OS processes over the TCP
// transport, spawned through the fork/exec launcher (SpawnWorld).
//
// The load-bearing assertion is the reduction contract crossing process
// boundaries: a W-process TCP world must produce final weights whose FNV hash
// is bitwise-equal to the single-process sequential-reference run of the same
// workload — including a mid-run freeze + shard repartition. The launcher
// itself is also under test: a wedged rank must surface as a clean timeout
// error (never a hang), and a crashed rank must fail the world fast.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/ckpt/checkpoint.h"
#include "src/distributed/dist_trainer.h"
#include "src/distributed/dist_workload.h"
#include "src/distributed/process_launcher.h"

// ThreadSanitizer detection across gcc (__SANITIZE_THREAD__) and clang
// (__has_feature): wall-clock-envelope tests skip under TSan's ~10x slowdown.
#if defined(__SANITIZE_THREAD__)
#define EGERIA_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EGERIA_TSAN_ACTIVE 1
#endif
#endif

namespace egeria {
namespace {

std::string WorkerBinary() {
  if (const char* env = std::getenv("EGERIA_WORKER_BIN")) {
    return env;
  }
#ifdef EGERIA_WORKER_BIN
  return EGERIA_WORKER_BIN;
#else
  return "./egeria_worker";
#endif
}

// Fresh per-test log dir under ./dist_logs (cwd = build when run via ctest);
// kept on failure so CI uploads it, removed on success to keep artifacts
// meaningful.
std::string MakeLogDir(const std::string& label) {
  mkdir("dist_logs", 0755);
  std::string tmpl = "dist_logs/" + label + "-XXXXXX";
  EXPECT_NE(nullptr, mkdtemp(tmpl.data()));
  return tmpl;
}

void RemoveLogDir(const SpawnOptions& options, const SpawnResult& result) {
  for (const std::string& p : result.log_paths) {
    unlink(p.c_str());
  }
  unlink((options.log_dir + "/rendezvous").c_str());
  rmdir(options.log_dir.c_str());
}

uint64_t ParseHash(const std::map<std::string, std::string>& kv) {
  const auto it = kv.find("params_hash");
  if (it == kv.end()) {
    return 0;
  }
  return std::strtoull(it->second.c_str(), nullptr, 16);
}

// In-process sequential-reference run of the named workload: the bitwise
// ground truth the worker processes must reproduce.
DistTrainResult ReferenceRun(const std::string& name, int world, bool egeria) {
  DistWorkload w = MakeDistWorkload(name);
  w.cfg.world = world;
  w.cfg.enable_egeria = egeria;
  w.cfg.reducer = DistTrainConfig::Reducer::kSequentialReference;
  return TrainDataParallel(w.make_model, *w.train, *w.val, w.cfg);
}

TEST(DistributedProcess, ThreeProcessTcpWorldMatchesSequentialReferenceBitwise) {
  const int world = 3;
  const DistTrainResult ref = ReferenceRun("tiny", world, /*egeria=*/true);
  ASSERT_TRUE(ref.replicas_consistent);
  // The pin must cover a mid-run freeze: the reference run's controller froze
  // at least one stage, so the TCP world has to reproduce the same reshard.
  ASSERT_GT(ref.final_frontier, 0) << "workload no longer freezes; test is hollow";

  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = world;
  options.common_args = {"--workload=tiny", "--egeria=1"};
  options.log_dir = MakeLogDir("tcp3");
  options.timeout_s = 240.0;
  const SpawnResult run = SpawnWorld(options);
  ASSERT_TRUE(run.ok) << run.error;

  ASSERT_EQ(run.rank_results.size(), static_cast<size_t>(world));
  const uint64_t hash0 = ParseHash(run.rank_results[0]);
  ASSERT_NE(hash0, 0U) << "rank 0 reported no result";
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(ParseHash(run.rank_results[static_cast<size_t>(r)]), hash0)
        << "rank " << r << " replica diverged";
  }
  // The acceptance pin: 3 OS processes over TCP == 1-process reference, bitwise.
  EXPECT_EQ(hash0, ref.params_hash);
  EXPECT_EQ(std::atoi(run.rank_results[0].at("final_frontier").c_str()),
            ref.final_frontier);
  // Freezing re-partitioned the shards at least once past the initial layout.
  EXPECT_GE(run.reshard_timeline.size(), 2U);
  if (!HasFailure()) {
    RemoveLogDir(options, run);
  }
}

TEST(DistributedProcess, TwoProcessWorldMatchesReferenceWithoutFreezing) {
  const int world = 2;
  DistWorkload w = MakeDistWorkload("tiny");
  w.cfg.world = world;
  w.cfg.epochs = 3;
  w.cfg.reducer = DistTrainConfig::Reducer::kSequentialReference;
  const DistTrainResult ref =
      TrainDataParallel(w.make_model, *w.train, *w.val, w.cfg);

  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = world;
  options.common_args = {"--workload=tiny", "--epochs=3"};
  options.log_dir = MakeLogDir("tcp2");
  options.timeout_s = 120.0;
  const SpawnResult run = SpawnWorld(options);
  ASSERT_TRUE(run.ok) << run.error;
  const uint64_t hash0 = ParseHash(run.rank_results[0]);
  EXPECT_EQ(hash0, ref.params_hash);
  EXPECT_EQ(ParseHash(run.rank_results[1]), hash0);
  if (!HasFailure()) {
    RemoveLogDir(options, run);
  }
}

// ---- Fault tolerance: crash, auto-restart, resume — the acceptance pin ----

int64_t ParseInt(const std::map<std::string, std::string>& kv, const char* key,
                 int64_t missing = -1) {
  const auto it = kv.find(key);
  return it == kv.end() ? missing : std::strtoll(it->second.c_str(), nullptr, 10);
}

// A world-3 TCP run with a rank killed mid-run — the kill placed so the
// recovery window SPANS the first freeze/reshard event — must auto-restart
// from the latest complete checkpoint and finish with weights bitwise-equal
// to the uninterrupted single-process reference.
TEST(DistributedProcess, CrashedWorldAutoRestartsAndMatchesReferenceBitwise) {
  const int world = 3;
  // Uninterrupted references: the sequential rank-0 reducer (the repo's
  // ground truth) and the in-process ring run (pinned equal to it by the
  // tests above), whose reshard timeline locates the first freeze.
  const DistTrainResult seq_ref = ReferenceRun("tiny", world, /*egeria=*/true);
  ASSERT_TRUE(seq_ref.replicas_consistent);
  DistWorkload ring_w = MakeDistWorkload("tiny");
  ring_w.cfg.world = world;
  ring_w.cfg.enable_egeria = true;
  const DistTrainResult ring_ref =
      TrainDataParallel(ring_w.make_model, *ring_w.train, *ring_w.val, ring_w.cfg);
  ASSERT_EQ(ring_ref.params_hash, seq_ref.params_hash);
  ASSERT_GE(ring_ref.reshard_events.size(), 2U) << "workload no longer freezes";
  const int64_t freeze_iter = ring_ref.reshard_events[1].iter;
  ASSERT_GE(freeze_iter, 4) << "freeze too early to stage a spanning checkpoint";
  ASSERT_LE(freeze_iter + 2, ring_ref.iterations - 3) << "freeze too late to crash after";
  // One checkpoint lands just before the freeze; the crash fires just after
  // the freeze+reshard applied, so the restart replays both from the
  // checkpoint (the next interval checkpoint, 2*(f-1), is past the crash).
  const int64_t ckpt_interval = freeze_iter - 1;
  const int64_t fault_iter = freeze_iter + 2;

  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = world;
  options.log_dir = MakeLogDir("recover");
  const std::string ckpt_dir = options.log_dir + "/ckpt";
  options.common_args = {"--workload=tiny", "--egeria=1", "--ckpt-dir=" + ckpt_dir,
                         "--ckpt-interval=" + std::to_string(ckpt_interval)};
  options.per_rank_args = {{}, {"--fault=exit:" + std::to_string(fault_iter)}, {}};
  options.timeout_s = 240.0;
  RecoverySpec recovery;
  recovery.max_restarts = 1;
  recovery.ckpt_dir = ckpt_dir;
  const SpawnResult run = SpawnWorldWithRecovery(options, recovery);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.attempts, 2) << "fault injection never fired";

  ASSERT_EQ(run.rank_results.size(), static_cast<size_t>(world));
  const uint64_t hash0 = ParseHash(run.rank_results[0]);
  ASSERT_NE(hash0, 0U);
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(ParseHash(run.rank_results[static_cast<size_t>(r)]), hash0)
        << "rank " << r << " replica diverged";
    EXPECT_EQ(ParseInt(run.rank_results[static_cast<size_t>(r)], "resumed_from"),
              ckpt_interval)
        << "rank " << r << " did not resume from the pre-freeze checkpoint";
  }
  // The acceptance pin: crash + auto-restart == uninterrupted single-process
  // reference, bit for bit, across a freeze/reshard replay.
  EXPECT_EQ(hash0, seq_ref.params_hash);
  EXPECT_EQ(ParseInt(run.rank_results[0], "final_frontier"), seq_ref.final_frontier);
  if (!HasFailure()) {
    std::filesystem::remove_all(options.log_dir);
  }
}

// Elastic restart: a checkpoint written by a world-4 TCP-process run resumed
// by a world-3 process run (momentum shards re-folded through the
// reduction-contract partition) must match, bitwise, the in-process world-3
// resume of the same checkpoint.
TEST(DistributedProcess, ElasticRestartWorld4To3MatchesInProcessReference) {
  const std::string log_dir = MakeLogDir("elastic");
  const std::string dir_proc = log_dir + "/ckpt_proc";
  const std::string dir_ref = log_dir + "/ckpt_ref";

  // Stage a world-4 checkpoint in-process (bitwise-equal to what a 4-process
  // world writes: the weights are pinned across harnesses, shards and buffer
  // sections are deterministic functions of the run).
  DistWorkload stage = MakeDistWorkload("tiny");
  stage.cfg.world = 4;
  stage.cfg.enable_egeria = true;
  stage.cfg.ckpt.dir = dir_proc;
  stage.cfg.ckpt.interval_iters = 6;
  stage.cfg.stop_after_iters = 24;
  const DistTrainResult staged =
      TrainDataParallel(stage.make_model, *stage.train, *stage.val, stage.cfg);
  ASSERT_TRUE(staged.stopped_early);
  std::filesystem::copy(dir_proc, dir_ref, std::filesystem::copy_options::recursive);
  const auto latest = FindLatestCheckpoint(dir_proc);
  ASSERT_TRUE(latest.has_value());
  ASSERT_EQ(latest->iter, 24);
  ASSERT_EQ(latest->world, 4);

  // In-process elastic reference: resume the same checkpoint at world 3.
  DistWorkload ref = MakeDistWorkload("tiny");
  ref.cfg.world = 3;
  ref.cfg.enable_egeria = true;
  ref.cfg.ckpt.dir = dir_ref;
  ref.cfg.ckpt.interval_iters = 6;
  const DistTrainResult inproc =
      TrainDataParallel(ref.make_model, *ref.train, *ref.val, ref.cfg);
  ASSERT_EQ(inproc.resumed_from_iter, 24);
  ASSERT_TRUE(inproc.replicas_consistent);

  // Elastic restart as real OS processes over TCP.
  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = 3;
  options.log_dir = log_dir + "/world3";
  options.common_args = {"--workload=tiny", "--egeria=1", "--ckpt-dir=" + dir_proc,
                         "--ckpt-interval=6"};
  options.timeout_s = 240.0;
  const SpawnResult run = SpawnWorld(options);
  ASSERT_TRUE(run.ok) << run.error;
  const uint64_t hash0 = ParseHash(run.rank_results[0]);
  ASSERT_NE(hash0, 0U);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(ParseHash(run.rank_results[static_cast<size_t>(r)]), hash0);
    EXPECT_EQ(ParseInt(run.rank_results[static_cast<size_t>(r)], "resumed_from"), 24);
  }
  // The elastic hash pin: 3 OS processes resuming a world-4 checkpoint ==
  // the in-process world-3 resume, bit for bit.
  EXPECT_EQ(hash0, inproc.params_hash);
  EXPECT_EQ(ParseInt(run.rank_results[0], "final_frontier"), inproc.final_frontier);
  if (!HasFailure()) {
    std::filesystem::remove_all(log_dir);
  }
}

TEST(DistributedProcess, KillOneRankSurfacesCleanTimeoutError) {
  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = 3;
  // Heartbeat off: this test pins the launcher's own deadline as the
  // last-resort backstop when no failure detector is running.
  options.common_args = {"--workload=tiny", "--epochs=3", "--hb-interval=0"};
  // Rank 2 wedges mid-run (iteration 3): the survivors block in their
  // collectives; the launcher must kill the world at its deadline and say so,
  // not hang until the transport's much larger io timeout.
  options.per_rank_args = {{}, {}, {"--fault=hang:3"}};
  options.log_dir = MakeLogDir("hang");
  options.timeout_s = 8.0;
  const SpawnResult run = SpawnWorld(options);
  EXPECT_FALSE(run.ok);
  EXPECT_TRUE(run.timed_out);
  EXPECT_NE(run.error.find("timed out"), std::string::npos) << run.error;
  // The wedged rank is named so the failure is attributable from the summary.
  EXPECT_NE(run.error.find("2"), std::string::npos) << run.error;
  if (!HasFailure()) {
    RemoveLogDir(options, run);
  }
}

// The heartbeat failure detector: with --hb-interval=0.5, a rank that wedges
// between collectives must be detected by rank 0, the world aborted, and the
// survivors exited (code 4, EGERIA_ABORT) within a few seconds — strictly
// sooner than both the 60s transport io deadline and the launcher's own 30s
// backstop. This is the timed acceptance pin for O(heartbeat) detection.
TEST(DistributedProcess, HeartbeatDetectsHungRankWellUnderTransportDeadline) {
#if defined(EGERIA_TSAN_ACTIVE)
  // The 0.5s heartbeat grace assumes roughly-native execution speed; under
  // TSan's ~10x slowdown a HEALTHY rank can fall behind the grace window and
  // the detector (correctly, per its spec) names the wrong rank. The timing
  // envelope is pinned by the native CI jobs; TSan covers the detector's
  // thread-safety through every other dist suite.
  GTEST_SKIP() << "heartbeat timing envelope is meaningless under TSan";
#endif
  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = 3;
  options.common_args = {"--workload=tiny", "--epochs=3", "--hb-interval=0.5",
                         "--io-timeout=60"};
  options.per_rank_args = {{}, {}, {"--fault=hang:3"}};
  options.log_dir = MakeLogDir("hbdetect");
  options.timeout_s = 30.0;
  const auto start = std::chrono::steady_clock::now();
  const SpawnResult run = SpawnWorld(options);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(run.ok);
  // NOT the launcher deadline: the failure detector beat it. The world failed
  // fast through a survivor's clean exit-4 abort.
  EXPECT_FALSE(run.timed_out) << run.error;
  EXPECT_NE(run.error.find("exited with code 4"), std::string::npos) << run.error;
  // Detection + abort + exit must take O(heartbeat interval), not O(io
  // timeout). The bound is deliberately loose (slow CI) yet far under both
  // the 60s transport deadline and the 30s launcher backstop.
  EXPECT_LT(wall, 15.0) << "hung rank not detected in O(heartbeat interval)";
  // Rank 0's failure detector named the hung rank and broadcast the abort.
  std::ifstream log0(run.log_paths[0]);
  const std::string contents((std::istreambuf_iterator<char>(log0)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("EGERIA_ABORT"), std::string::npos) << contents;
  EXPECT_NE(contents.find("failure detector"), std::string::npos) << contents;
  EXPECT_NE(contents.find("rank 2"), std::string::npos) << contents;
  if (!HasFailure()) {
    RemoveLogDir(options, run);
  }
}

TEST(DistributedProcess, CrashedRankFailsTheWorldFast) {
  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = 3;
  options.common_args = {"--workload=tiny", "--epochs=3"};
  options.per_rank_args = {{}, {"--fault=exit:3"}, {}};
  options.log_dir = MakeLogDir("crash");
  // Generous deadline: fail-fast must beat it by a wide margin (the survivors
  // are killed as soon as rank 1's nonzero exit is reaped).
  options.timeout_s = 60.0;
  const SpawnResult run = SpawnWorld(options);
  EXPECT_FALSE(run.ok);
  EXPECT_FALSE(run.timed_out);
  // Attribution races: rank 1's neighbors notice the dead socket and abort
  // almost as fast as rank 1 exits, so the launcher may reap either first. The
  // guarantees under test: a named-rank error, and rank 1's true exit code.
  EXPECT_NE(run.error.find("exited with code"), std::string::npos) << run.error;
  EXPECT_EQ(run.exit_codes[1], 3);
  if (!HasFailure()) {
    RemoveLogDir(options, run);
  }
}

}  // namespace
}  // namespace egeria
