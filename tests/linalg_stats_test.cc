// QR/SVD numerical properties, streaming statistics (Equation 2 semantics, slope
// fitting), RNG determinism, and tensor serialization round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "src/tensor/linalg.h"
#include "src/tensor/serialize.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace egeria {
namespace {

struct QrShape {
  int64_t n, p;
};

class QrTest : public ::testing::TestWithParam<QrShape> {};

TEST_P(QrTest, ReconstructsAndOrthonormal) {
  const auto [n, p] = GetParam();
  Rng rng(n * 31 + p);
  Tensor a = Tensor::Randn({n, p}, rng);
  QrResult qr = HouseholderQr(a);
  // Q^T Q == I.
  Tensor qtq = MatMulTransA(qr.q, qr.q);
  for (int64_t i = 0; i < p; ++i) {
    for (int64_t j = 0; j < p; ++j) {
      EXPECT_NEAR(qtq.At(i, j), (i == j) ? 1.0F : 0.0F, 1e-4F);
    }
  }
  // Q R == A.
  Tensor recon = MatMul(qr.q, qr.r);
  for (int64_t i = 0; i < a.NumEl(); ++i) {
    EXPECT_NEAR(recon.Data()[i], a.Data()[i], 1e-4F);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrTest,
                         ::testing::Values(QrShape{4, 4}, QrShape{10, 3}, QrShape{30, 8},
                                           QrShape{64, 16}));

struct SvdShape {
  int64_t m, n;
};

class SvdTest : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdTest, ReconstructsWithOrthonormalFactors) {
  const auto [m, n] = GetParam();
  Rng rng(m * 13 + n);
  Tensor a = Tensor::Randn({m, n}, rng);
  SvdResult svd = JacobiSvd(a);
  const int64_t r = static_cast<int64_t>(svd.s.size());
  EXPECT_EQ(r, std::min(m, n));
  // Descending singular values.
  for (int64_t i = 1; i < r; ++i) {
    EXPECT_GE(svd.s[static_cast<size_t>(i - 1)], svd.s[static_cast<size_t>(i)] - 1e-5F);
  }
  // A == U diag(s) V^T.
  Tensor us({m, r});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < r; ++j) {
      us.At(i, j) = svd.u.At(i, j) * svd.s[static_cast<size_t>(j)];
    }
  }
  Tensor recon = MatMulTransB(us, svd.v);
  for (int64_t i = 0; i < a.NumEl(); ++i) {
    EXPECT_NEAR(recon.Data()[i], a.Data()[i], 1e-3F);
  }
  // U columns orthonormal.
  Tensor utu = MatMulTransA(svd.u, svd.u);
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < r; ++j) {
      EXPECT_NEAR(utu.At(i, j), (i == j) ? 1.0F : 0.0F, 1e-3F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdTest,
                         ::testing::Values(SvdShape{4, 4}, SvdShape{8, 5}, SvdShape{6, 6},
                                           SvdShape{20, 10}));

TEST(Linalg, CenterColumnsZeroesMeans) {
  Rng rng(3);
  Tensor a = Tensor::Randn({20, 4}, rng);
  a.AddScalar_(5.0F);
  CenterColumns(a);
  for (int64_t j = 0; j < 4; ++j) {
    double mean = 0;
    for (int64_t i = 0; i < 20; ++i) {
      mean += a.At(i, j);
    }
    EXPECT_NEAR(mean / 20.0, 0.0, 1e-5);
  }
}

TEST(Stats, MovingAverageWarmupMatchesEquationTwo) {
  MovingAverage ma(3);
  EXPECT_DOUBLE_EQ(ma.Add(6.0), 6.0);              // i < W: mean of all
  EXPECT_DOUBLE_EQ(ma.Add(0.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.Add(3.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.Add(9.0), 4.0);              // window: (0+3+9)/3
  ma.SetWindow(2);
  EXPECT_DOUBLE_EQ(ma.Value(), 6.0);               // (3+9)/2 after shrink
}

TEST(Stats, LinearFitExactOnLine) {
  WindowedLinearFit fit(5);
  for (int i = 0; i < 5; ++i) {
    fit.Add(2.0 * i + 1.0);
  }
  LinearFit f = fit.Fit();
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
}

TEST(Stats, LinearFitWindowSlides) {
  WindowedLinearFit fit(3);
  // Values: 0,0,0 then 5,10 — window sees {0,5,10}: slope 5.
  for (double v : {0.0, 0.0, 0.0, 5.0, 10.0}) {
    fit.Add(v);
  }
  EXPECT_NEAR(fit.Fit().slope, 5.0, 1e-9);
}

TEST(Stats, FlatSeriesHasZeroSlope) {
  WindowedLinearFit fit(10);
  for (int i = 0; i < 10; ++i) {
    fit.Add(3.14);
  }
  EXPECT_NEAR(fit.Fit().slope, 0.0, 1e-12);
}

TEST(Stats, RunningStat) {
  RunningStat rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    rs.Add(v);
  }
  EXPECT_NEAR(rs.Mean(), 5.0, 1e-12);
  EXPECT_NEAR(rs.StdDev(), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_DOUBLE_EQ(rs.Min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 9.0);
}

TEST(Rng, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng k1 = Rng::ForKey(42, 7);
  Rng k2 = Rng::ForKey(42, 7);
  Rng k3 = Rng::ForKey(42, 8);
  EXPECT_EQ(k1.NextU64(), k2.NextU64());
  EXPECT_NE(k1.NextU64(), k3.NextU64());
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(2);
  RunningStat rs;
  for (int i = 0; i < 20000; ++i) {
    rs.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(rs.Mean(), 0.0, 0.05);
  EXPECT_NEAR(rs.StdDev(), 1.0, 0.05);
}

TEST(Serialize, TensorRoundTrip) {
  Rng rng(5);
  Tensor t = Tensor::Randn({3, 4, 5}, rng);
  const std::string path = ::testing::TempDir() + "/egeria_tensor.egt";
  ASSERT_TRUE(SaveTensorFile(path, t));
  Tensor u = LoadTensorFile(path);
  ASSERT_TRUE(u.Defined());
  ASSERT_EQ(u.Shape(), t.Shape());
  for (int64_t i = 0; i < t.NumEl(); ++i) {
    EXPECT_EQ(t.Data()[i], u.Data()[i]);
  }
}

TEST(Serialize, CheckpointRoundTrip) {
  Rng rng(6);
  Checkpoint ckpt;
  ckpt["w1"] = Tensor::Randn({2, 3}, rng);
  ckpt["bias"] = Tensor::Randn({7}, rng);
  const std::string path = ::testing::TempDir() + "/egeria_ckpt.egc";
  ASSERT_TRUE(SaveCheckpoint(path, ckpt));
  Checkpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(path, loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded["w1"].Shape(), ckpt["w1"].Shape());
  EXPECT_EQ(loaded["bias"].At(3), ckpt["bias"].At(3));
}

TEST(Serialize, CorruptFileFailsGracefully) {
  const std::string path = ::testing::TempDir() + "/egeria_bad.egt";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a tensor";
  }
  EXPECT_FALSE(LoadTensorFile(path).Defined());
  Checkpoint c;
  EXPECT_FALSE(LoadCheckpoint(path, c));
}

}  // namespace
}  // namespace egeria
