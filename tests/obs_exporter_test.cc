// Embedded HTTP exporter (src/obs/exporter.h): ephemeral-port bind + port
// file publish, Prometheus /metrics rendering (cumulative buckets, derived
// quantile gauges), /healthz liveness incl. the stale→503 transition, the
// non-clearing /trace snapshot vs the draining variant, and 404/405 hygiene.
// Named obs_* so it runs under the `obs` ctest label (TSan job in CI): the
// serve thread races live metric updates by design.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "src/obs/exporter.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace egeria {
namespace {

class ObsExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetEnabled(false);
    trace::ResetForTest();
    obs::ResetAllForTest();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::ResetForTest();
    obs::ResetAllForTest();
  }
};

// Minimal HTTP/1.0 GET: send the request, read to EOF, return the full
// response (headers + body). Empty string on connect failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST_F(ObsExporterTest, PublishesPortFileAndServesMetrics) {
  obs::GetCounter("exp_test.requests").Add(7);
  obs::GetGauge("exp_test.depth").Set(1.5);
  obs::Histogram& h = obs::GetHistogram("exp_test.lat_s");
  h.Observe(1.5e-3);
  h.Observe(1.5e-3);
  h.Observe(3.0e-3);

  obs::ExporterOptions opts;
  opts.rank = 3;
  opts.port_file = ::testing::TempDir() + "/obs_port_rank3";
  auto exporter = obs::Exporter::Start(opts);
  ASSERT_NE(exporter, nullptr);
  EXPECT_GT(exporter->Port(), 0);

  // The port file is complete the moment it exists (tmp+rename publish).
  std::ifstream pf(opts.port_file);
  ASSERT_TRUE(static_cast<bool>(pf));
  int published = 0;
  pf >> published;
  EXPECT_EQ(published, exporter->Port());

  const std::string resp = HttpGet(exporter->Port(), "/metrics");
  ASSERT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("# TYPE egeria_exp_test_requests counter"),
            std::string::npos);
  EXPECT_NE(resp.find("egeria_exp_test_requests 7"), std::string::npos);
  EXPECT_NE(resp.find("egeria_exp_test_depth 1.5"), std::string::npos);
  // Histogram: cumulative buckets (2 at the 2.048ms edge, 3 total), _sum,
  // _count, +Inf, and the derived quantile gauges.
  EXPECT_NE(resp.find("# TYPE egeria_exp_test_lat_s histogram"),
            std::string::npos);
  EXPECT_NE(resp.find("egeria_exp_test_lat_s_bucket{le=\"0.002048\"} 2"),
            std::string::npos);
  EXPECT_NE(resp.find("egeria_exp_test_lat_s_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(resp.find("egeria_exp_test_lat_s_count 3"), std::string::npos);
  EXPECT_NE(resp.find("egeria_exp_test_lat_s_p50"), std::string::npos);
  EXPECT_NE(resp.find("egeria_exp_test_lat_s_p99"), std::string::npos);
}

TEST_F(ObsExporterTest, HealthzReportsIterationsAndTurnsStale) {
  obs::ExporterOptions opts;
  opts.rank = 1;
  opts.stale_after_s = 0.2;
  auto exporter = obs::Exporter::Start(opts);
  ASSERT_NE(exporter, nullptr);

  // Before any iteration there is nothing to be stale about.
  std::string resp = HttpGet(exporter->Port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"rank\":1"), std::string::npos);
  EXPECT_NE(resp.find("\"last_iteration\":-1"), std::string::npos);

  exporter->NoteIteration(42);
  resp = HttpGet(exporter->Port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"last_iteration\":42"), std::string::npos);

  // Iterations started, then stalled past the threshold → 503.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  resp = HttpGet(exporter->Port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 503"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"status\":\"stale\""), std::string::npos);
}

TEST_F(ObsExporterTest, TraceSnapshotIsNonClearingUnlessDrained) {
  trace::SetEnabled(true);
  trace::AddInstant("exp_test", "marker");
  const size_t buffered = trace::BufferedEventCount();
  ASSERT_GE(buffered, 1U);

  obs::ExporterOptions opts;
  auto exporter = obs::Exporter::Start(opts);
  ASSERT_NE(exporter, nullptr);

  std::string resp = HttpGet(exporter->Port(), "/trace");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(resp.find("\"name\":\"marker\""), std::string::npos);
  // A plain scrape is read-only: the ring still holds the events.
  EXPECT_EQ(trace::BufferedEventCount(), buffered);

  resp = HttpGet(exporter->Port(), "/trace?drain=1");
  EXPECT_NE(resp.find("\"name\":\"marker\""), std::string::npos);
  EXPECT_EQ(trace::BufferedEventCount(), 0U);
}

TEST_F(ObsExporterTest, RejectsUnknownPathsAndMethods) {
  obs::ExporterOptions opts;
  auto exporter = obs::Exporter::Start(opts);
  ASSERT_NE(exporter, nullptr);
  EXPECT_NE(HttpGet(exporter->Port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);

  // Non-GET → 405 (raw write so we control the method).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(exporter->Port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char req[] = "POST /metrics HTTP/1.0\r\n\r\n";
  ::send(fd, req, sizeof(req) - 1, 0);
  std::string resp;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 405"), std::string::npos) << resp;
}

TEST_F(ObsExporterTest, StopIsIdempotentAndJoins) {
  obs::ExporterOptions opts;
  auto exporter = obs::Exporter::Start(opts);
  ASSERT_NE(exporter, nullptr);
  const int port = exporter->Port();
  exporter->Stop();
  exporter->Stop();
  // Stopped server no longer answers.
  EXPECT_EQ(HttpGet(port, "/metrics"), "");
}

}  // namespace
}  // namespace egeria
