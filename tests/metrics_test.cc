// SP loss, PWCCA, and baseline metric properties.
#include <gtest/gtest.h>

#include <fstream>

#include "src/metrics/gradient_metrics.h"
#include "src/metrics/pwcca.h"
#include "src/metrics/sp_loss.h"
#include "src/tensor/linalg.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

TEST(SpLoss, ZeroForIdenticalActivations) {
  Rng rng(1);
  Tensor a = Tensor::Randn({8, 16}, rng);
  EXPECT_NEAR(SpLoss(a, a), 0.0, 1e-10);
}

TEST(SpLoss, ScaleInvariantPerModel) {
  // Row normalization makes the similarity matrix invariant to a global positive
  // rescale of either model's activations.
  Rng rng(2);
  Tensor a = Tensor::Randn({6, 20}, rng);
  Tensor b = Tensor::Randn({6, 20}, rng);
  const double base = SpLoss(a, b);
  Tensor a_scaled = a.Scale(3.7F);
  EXPECT_NEAR(SpLoss(a_scaled, b), base, 1e-6);
}

TEST(SpLoss, PositiveForDifferentActivations) {
  Rng rng(3);
  Tensor a = Tensor::Randn({8, 32}, rng);
  Tensor b = Tensor::Randn({8, 32}, rng);
  EXPECT_GT(SpLoss(a, b), 1e-4);
}

TEST(SpLoss, SymmetricInArguments) {
  Rng rng(4);
  Tensor a = Tensor::Randn({5, 12}, rng);
  Tensor b = Tensor::Randn({5, 12}, rng);
  EXPECT_NEAR(SpLoss(a, b), SpLoss(b, a), 1e-9);
}

TEST(SpLoss, WorksAcrossDifferentFeatureShapes) {
  // Similarity matrices are [b, b] regardless of feature dims — the training and
  // reference activations only need matching batch size.
  Rng rng(5);
  Tensor a = Tensor::Randn({4, 3, 5, 5}, rng);
  Tensor b = Tensor::Randn({4, 10}, rng);
  EXPECT_GE(SpLoss(a, b), 0.0);
}

TEST(SpLoss, SimilarityMatrixRowsUnitNorm) {
  Rng rng(6);
  Tensor a = Tensor::Randn({5, 9}, rng);
  Tensor g = BatchSimilarityMatrix(a);
  for (int64_t i = 0; i < 5; ++i) {
    double norm = 0;
    for (int64_t j = 0; j < 5; ++j) {
      norm += static_cast<double>(g.At(i, j)) * g.At(i, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-4);
  }
}

TEST(Pwcca, NearZeroForIdenticalRepresentations) {
  Rng rng(7);
  Tensor x = Tensor::Randn({200, 8}, rng);
  EXPECT_LT(PwccaDistance(x, x), 1e-3);
}

TEST(Pwcca, InvariantToOrthogonalRotation) {
  // CCA correlates subspaces: X and X*Q (orthogonal Q) carry identical information.
  Rng rng(8);
  Tensor x = Tensor::Randn({200, 6}, rng);
  Tensor q;
  {
    Tensor m = Tensor::Randn({6, 6}, rng);
    q = HouseholderQr(m).q;
  }
  Tensor y = MatMul(x, q);
  EXPECT_LT(PwccaDistance(x, y), 1e-2);
}

TEST(Pwcca, HighForIndependentRepresentations) {
  Rng rng(9);
  Tensor x = Tensor::Randn({400, 10}, rng);
  Tensor y = Tensor::Randn({400, 10}, rng);
  EXPECT_GT(PwccaDistance(x, y), 0.5);
}

TEST(Pwcca, DistanceInUnitInterval) {
  Rng rng(10);
  for (int trial = 0; trial < 5; ++trial) {
    Tensor x = Tensor::Randn({100, 5}, rng);
    Tensor y = Tensor::Randn({100, 7}, rng);
    const double d = PwccaDistance(x, y);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Pwcca, ConvLayoutReshape) {
  Rng rng(11);
  Tensor a = Tensor::Randn({2, 3, 4, 4}, rng);
  Tensor s = ActivationsToSamples(a);
  EXPECT_EQ(s.Size(0), 2 * 16);
  EXPECT_EQ(s.Size(1), 3);
  // Channel value preserved: sample (b=1, y=2, x=3), channel 1.
  EXPECT_FLOAT_EQ(s.At(1 * 16 + 2 * 4 + 3, 1), a.At(1, 1, 2, 3));
}

TEST(GradientMetrics, StageNormMatchesManual) {
  Parameter p1("a", Tensor::FromVector({2}, {3.0F, 4.0F}));
  p1.grad = Tensor::FromVector({2}, {3.0F, 4.0F});
  Parameter p2("b", Tensor::FromVector({1}, {0.0F}));
  p2.grad = Tensor::FromVector({1}, {12.0F});
  EXPECT_NEAR(StageGradientNorm({&p1, &p2}), 13.0, 1e-6);
}

TEST(GradientMetrics, SkipConvGateZeroForIdentical) {
  Rng rng(12);
  Tensor a = Tensor::Randn({4, 8}, rng);
  EXPECT_DOUBLE_EQ(SkipConvGate(a, a), 0.0);
  Tensor b = a.Clone();
  b.AddScalar_(0.5F);
  EXPECT_NEAR(SkipConvGate(a, b), 0.5, 1e-5);
}

TEST(GradientMetrics, FitNetsL2) {
  Tensor a = Tensor::FromVector({2}, {1.0F, 2.0F});
  Tensor b = Tensor::FromVector({2}, {3.0F, 2.0F});
  EXPECT_NEAR(FitNetsL2(a, b), 2.0, 1e-6);
}

}  // namespace
}  // namespace egeria
