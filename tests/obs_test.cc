// Unified tracing & metrics layer (src/obs/): span ordering and nesting,
// concurrent emission from many threads (this suite runs under TSan in CI,
// label `obs`), the disabled-tracer overhead bound, histogram bucket edge
// cases, and the trainer-level pin that tracing on vs off leaves trained
// weights bitwise identical.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/freeze_baselines.h"
#include "src/core/module_partitioner.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_image.h"
#include "src/models/resnet.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/optim/lr_scheduler.h"
#include "src/tensor/serialize.h"

namespace egeria {
namespace {

// Restores a clean tracer/metrics state around each test in this suite.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The trainer calls trace::InitFromEnv(); a stray EGERIA_TRACE in the
    // test environment must not flip the tracing-off halves of these tests.
    unsetenv("EGERIA_TRACE");
    trace::SetEnabled(false);
    trace::ResetForTest();
    obs::ResetAllForTest();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::ResetForTest();
    obs::ResetAllForTest();
  }
};

// Extracts the value of a numeric field from the (single) serialized event
// line whose name field matches `name`. Returns false if no such line.
bool EventField(const std::string& json, const std::string& name,
                const char* field, double* out) {
  const std::string name_pat = "\"name\":\"" + name + "\"";
  size_t line_start = 0;
  while (line_start < json.size()) {
    size_t line_end = json.find('\n', line_start);
    if (line_end == std::string::npos) {
      line_end = json.size();
    }
    const std::string line = json.substr(line_start, line_end - line_start);
    if (line.rfind("{\"ph\":", 0) == 0 && line.find(name_pat) != std::string::npos) {
      const std::string pat = std::string("\"") + field + "\":";
      const size_t p = line.find(pat);
      if (p == std::string::npos) {
        return false;
      }
      *out = std::strtod(line.c_str() + p + pat.size(), nullptr);
      return true;
    }
    line_start = line_end + 1;
  }
  return false;
}

TEST_F(ObsTest, SpanNestingAndCompletionOrder) {
  trace::SetEnabled(true);
  {
    trace::Span outer("test", "outer");
    ASSERT_TRUE(outer.active());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      trace::Span inner("test", "inner");
      inner.SetArgs("{\"k\":%d}", 7);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  trace::AddInstant("test", "marker");
  const std::string json = trace::FlushToString();

  double outer_ts = 0.0;
  double outer_dur = 0.0;
  double inner_ts = 0.0;
  double inner_dur = 0.0;
  ASSERT_TRUE(EventField(json, "outer", "ts", &outer_ts));
  ASSERT_TRUE(EventField(json, "outer", "dur", &outer_dur));
  ASSERT_TRUE(EventField(json, "inner", "ts", &inner_ts));
  ASSERT_TRUE(EventField(json, "inner", "dur", &inner_dur));
  // The inner span's interval nests strictly inside the outer's.
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
  // Events land in completion order: inner closes before outer.
  EXPECT_LT(json.find("\"name\":\"inner\""), json.find("\"name\":\"outer\""));
  // The instant is thread-scoped and the args survived.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("{\"k\":7}"), std::string::npos);
  // Flush cleared the buffers.
  EXPECT_EQ(trace::BufferedEventCount(), 0U);
}

TEST_F(ObsTest, DisabledTracerEmitsNothing) {
  ASSERT_FALSE(trace::Enabled());
  {
    EGERIA_TRACE_SCOPE("test", "noop");
    trace::Span span("test", "noop2");
    EXPECT_FALSE(span.active());
    span.SetArgs("{\"x\":%d}", 1);  // must be a safe no-op
  }
  trace::AddInstant("test", "noop3");
  trace::AddInstantF("test", "noop4", "{\"x\":%d}", 2);
  EXPECT_EQ(trace::BufferedEventCount(), 0U);
}

// A span opened while enabled still closes safely after a disable (its event
// is simply dropped by the emit-time check or recorded; either way no crash,
// and a span opened while disabled never emits even if tracing turns on).
TEST_F(ObsTest, EnableDisableRaceAtSpanBoundaries) {
  trace::Span late("test", "opened_disabled");
  trace::SetEnabled(true);
  { trace::Span early("test", "opened_enabled"); }
  trace::SetEnabled(false);
  // `late` destructs here with tracing off; it was inactive from birth.
  EXPECT_FALSE(late.active());
  const std::string json = trace::FlushToString();
  EXPECT_NE(json.find("opened_enabled"), std::string::npos);
  EXPECT_EQ(json.find("opened_disabled"), std::string::npos);
}

// ≥8 threads hammer spans, instants, and metrics concurrently. The per-thread
// buffers make this race-free by construction — this is the test CI runs
// under ThreadSanitizer (ctest -L obs).
TEST_F(ObsTest, ConcurrentEmitManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 1000;
  trace::SetEnabled(true);
  obs::Counter& counter = obs::GetCounter("obs_test.concurrent");
  obs::Histogram& hist = obs::GetHistogram("obs_test.concurrent_s");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &counter, &hist] {
      trace::SetThreadName(("worker" + std::to_string(t)).c_str());
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace::Span span("test", "work");
        span.SetArgs("{\"i\":%d}", i);
        counter.Add(1);
        hist.Observe(1e-5);
        if (i % 100 == 0) {
          trace::AddInstantF("test", "tick", "{\"i\":%d}", i);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.Get(), kThreads * kSpansPerThread);
  EXPECT_EQ(hist.Count(), kThreads * kSpansPerThread);
  // Every span landed: well under the per-thread cap, so zero drops.
  EXPECT_EQ(trace::DroppedEvents(), 0U);
  EXPECT_GE(trace::BufferedEventCount(),
            static_cast<size_t>(kThreads * kSpansPerThread));
  const std::string json = trace::FlushToString();
  EXPECT_NE(json.find("\"worker0\""), std::string::npos);
  EXPECT_NE(json.find("\"worker7\""), std::string::npos);
}

// Low-priority events saturate at the 7/8 watermark and are counted; normal
// events keep landing past it (the reconciliation spans can never be crowded
// out by high-volume GEMM detail).
TEST_F(ObsTest, LowPriorityLaneDropsBeforeNormalLane) {
  trace::SetEnabled(true);
  constexpr int kFlood = 70000;  // > 7/8 of the 65536-event buffer
  for (int i = 0; i < kFlood; ++i) {
    trace::AddCompleteLowPrio("test", "detail", 0, 1);
  }
  EXPECT_GT(trace::DroppedEvents(), 0U);
  const size_t before = trace::BufferedEventCount();
  trace::AddComplete("test", "phase", 0, 1);
  EXPECT_EQ(trace::BufferedEventCount(), before + 1);
  trace::ResetForTest();
}

// Disabled-tracer overhead: the EGERIA_TRACE_SCOPE fast path is one relaxed
// atomic load. The bound is deliberately generous (2 µs/span) so it holds
// under TSan/ASan and loaded CI machines while still catching a regression
// that puts a lock or an allocation on the disabled path.
TEST_F(ObsTest, DisabledSpanOverheadBounded) {
  ASSERT_FALSE(trace::Enabled());
  constexpr int kIters = 200000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    EGERIA_TRACE_SCOPE("test", "disabled");
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed / kIters, 2e-6)
      << "disabled EGERIA_TRACE_SCOPE costs " << elapsed / kIters * 1e9
      << " ns/span";
  EXPECT_EQ(trace::BufferedEventCount(), 0U);
}

TEST_F(ObsTest, HistogramBucketEdges) {
  using H = obs::Histogram;
  // Underflow: zero, negative, and anything below the 1µs first edge.
  EXPECT_EQ(H::BucketIndex(0.0), -1);
  EXPECT_EQ(H::BucketIndex(-1.0), -1);
  EXPECT_EQ(H::BucketIndex(0.9e-6), -1);
  // Exact power-of-two edges belong to the bucket they open.
  EXPECT_EQ(H::BucketIndex(1e-6), 0);
  EXPECT_EQ(H::BucketIndex(2e-6), 1);
  EXPECT_EQ(H::BucketIndex(4e-6), 2);
  EXPECT_EQ(H::BucketIndex(H::BucketUpperEdge(9)), 10);
  // Just inside / just under an edge.
  EXPECT_EQ(H::BucketIndex(1.999e-6), 0);
  EXPECT_EQ(H::BucketIndex(3.999e-6), 1);
  // The last finite bucket and overflow.
  const double last_edge = H::BucketUpperEdge(H::kNumBuckets - 1);
  EXPECT_EQ(H::BucketIndex(last_edge * 0.999), H::kNumBuckets - 1);
  EXPECT_EQ(H::BucketIndex(last_edge), H::kNumBuckets);
  EXPECT_EQ(H::BucketIndex(1e9), H::kNumBuckets);

  obs::Histogram& h = obs::GetHistogram("obs_test.edges_s");
  h.Observe(0.0);
  h.Observe(-5.0);
  h.Observe(1e-6);
  h.Observe(1.5e-6);
  h.Observe(2e-6);
  h.Observe(1e9);
  EXPECT_EQ(h.Count(), 6);
  EXPECT_EQ(h.BucketCount(-1), 2);
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(H::kNumBuckets), 1);
  // Negative observations do not poison the sum (clamped out); the rest
  // accumulate in integer nanoseconds.
  EXPECT_GT(h.Sum(), 0.0);
}

TEST_F(ObsTest, HistogramQuantileEdgeCases) {
  using H = obs::Histogram;
  obs::Histogram& h = obs::GetHistogram("obs_test.quant_s");
  // Empty histogram: every quantile is 0 by convention.
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);

  // One observation at 1.5 ms lands in bucket [1.024ms, 2.048ms); quantiles
  // interpolate linearly across exactly that bucket.
  h.Observe(1.5e-3);
  const double lo = 1.024e-3;
  const double hi = 2.048e-3;
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), lo);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), lo + 0.5 * (hi - lo));
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), hi);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), lo);
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), hi);

  // Two equally-filled adjacent buckets: the median sits exactly on the
  // shared edge, p90 is 80% into the upper bucket.
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Observe(1.5e-3);  // bucket [1.024, 2.048)ms
  for (int i = 0; i < 100; ++i) h.Observe(3.0e-3);  // bucket [2.048, 4.096)ms
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.048e-3);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 2.048e-3 + 0.8 * 2.048e-3);
  // Monotone in q.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));

  // Underflow mass interpolates over [0, first edge).
  h.Reset();
  for (int i = 0; i < 4; ++i) h.Observe(0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.5 * H::kFirstEdge);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), H::kFirstEdge);

  // Overflow mass saturates at the last finite edge — the estimator never
  // invents values beyond the scale.
  h.Reset();
  h.Observe(1e9);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), H::BucketUpperEdge(H::kNumBuckets - 1));
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), H::BucketUpperEdge(H::kNumBuckets - 1));
}

TEST_F(ObsTest, ScopedPhaseFeedsHistogramAccumulatorAndTrace) {
  trace::SetEnabled(true);
  obs::Histogram& h = obs::GetHistogram("obs_test.phase_s");
  double accum = 0.0;
  {
    obs::ScopedPhase phase("test", "phase", &h, &accum);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    phase.Stop();
    phase.Stop();  // idempotent
  }
  EXPECT_EQ(h.Count(), 1);
  EXPECT_GT(accum, 0.0);
  // All three sinks saw the SAME interval (sum truncates to whole ns).
  EXPECT_NEAR(h.Sum(), accum, 2e-9);
  double dur_us = 0.0;
  const std::string json = trace::FlushToString();
  ASSERT_TRUE(EventField(json, "phase", "dur", &dur_us));
  EXPECT_NEAR(dur_us * 1e-6, accum, 1e-9);
}

TEST_F(ObsTest, SnapshotFormats) {
  obs::GetCounter("obs_test.snap_counter").Add(3);
  obs::GetGauge("obs_test.snap_gauge").Set(2.5);
  obs::GetHistogram("obs_test.snap_s").Observe(1e-3);
  const std::string text = obs::SnapshotText();
  EXPECT_NE(text.find("counter obs_test.snap_counter = 3"), std::string::npos);
  EXPECT_NE(text.find("gauge obs_test.snap_gauge = 2.500000"),
            std::string::npos);
  EXPECT_NE(text.find("histogram obs_test.snap_s count=1"), std::string::npos);
  // Derived quantiles: 1 ms lands in bucket [512µs, 1024µs); the lone
  // observation puts every quantile at the interpolated bucket position.
  EXPECT_NE(text.find("p50_s=0.000768"), std::string::npos);
  EXPECT_NE(text.find("p90_s=0.000973"), std::string::npos);
  EXPECT_NE(text.find("p99_s="), std::string::npos);
  const std::string json = obs::SnapshotJson();
  EXPECT_NE(json.find("\"obs_test.snap_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_s\":0.000768"), std::string::npos);
  EXPECT_NE(json.find("\"p99_s\":"), std::string::npos);
}

// ---- trainer-level pin: tracing must be a pure observer --------------------

uint64_t HashModelParams(const ChainModel& model) {
  uint64_t hash = kFnv64Offset;
  for (const Parameter* p :
       const_cast<ChainModel&>(model).ParamsFrom(0)) {
    hash = Fnv1a64(p->value.Data(),
                   static_cast<size_t>(p->value.NumEl()) * sizeof(float), hash);
  }
  return hash;
}

uint64_t RunTinyTraining() {
  Rng rng(11);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 1;
  mcfg.base_width = 8;
  mcfg.num_classes = 4;
  PartitionConfig pcfg;
  pcfg.target_modules = 4;
  auto model =
      PartitionIntoChain("resnet", BuildCifarResNetBlocks(mcfg, rng), pcfg);
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 64;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise_std = 0.5F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 32;
  SyntheticImageDataset val(vcfg);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.val_batches = 2;
  Trainer trainer(*model, train, val, cfg);
  trainer.Run();
  return HashModelParams(*model);
}

// A traced freezing run with the feature store on must show the store serving
// in all three sinks: TrainResult, the cache.fp_skips counter, and fp_skip
// instants (plus frozen_fp populate spans) in the trace itself.
TEST_F(ObsTest, TracedFreezingRunEmitsFeatureStoreSkips) {
  trace::SetEnabled(true);
  Rng rng(12);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 1;
  mcfg.base_width = 8;
  mcfg.num_classes = 4;
  PartitionConfig pcfg;
  pcfg.target_modules = 4;
  auto model =
      PartitionIntoChain("resnet", BuildCifarResNetBlocks(mcfg, rng), pcfg);
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 64;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise_std = 0.5F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 32;
  SyntheticImageDataset val(vcfg);
  TrainConfig cfg;
  cfg.epochs = 3;  // epoch 0 populates the store, epochs 1-2 serve from it
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.val_batches = 1;
  cfg.enable_egeria = true;
  cfg.egeria.enable_cache = true;
  // Neutralize the controller; the static hook owns the frontier (the same
  // pattern as the fig09 smoke and the trainer integration tests).
  cfg.egeria.eval_interval_n = int64_t{1} << 20;
  cfg.egeria.max_bootstrap_iters = -1;
  StaticFreezeHook hook(/*epoch=*/0, /*stage=*/1);
  Trainer trainer(*model, train, val, cfg);
  trainer.SetFreezeHook(&hook);
  const TrainResult result = trainer.Run();

  ASSERT_GT(result.fp_skip_count, 0);
  EXPECT_EQ(obs::CounterValue("cache.fp_skips"), result.fp_skip_count);
  const std::string json = trace::FlushToString();
  EXPECT_NE(json.find("\"name\":\"fp_skip\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"frozen_fp\""), std::string::npos);
}

TEST_F(ObsTest, TrainingHashIdenticalTracingOnVsOff) {
  trace::SetEnabled(false);
  const uint64_t hash_off = RunTinyTraining();

  trace::SetEnabled(true);
  const uint64_t hash_on = RunTinyTraining();
  // The traced run actually recorded the trainer phases...
  EXPECT_GT(trace::BufferedEventCount(), 0U);
  EXPECT_GT(obs::HistogramCount("trainer.fp_s"), 0);
  trace::ResetForTest();
  trace::SetEnabled(false);

  // ...and observed without perturbing: bitwise-identical trained weights.
  EXPECT_EQ(hash_on, hash_off);
}

}  // namespace
}  // namespace egeria
