// Failure-path coverage for the self-healing transport stack: frame digests,
// the integrity decorator's typed error taxonomy (checksum / sequence /
// protocol), deterministic fault injection (plan parsing, seed expansion, and
// each transport-level kind firing as documented), and the collective error
// paths on BOTH backends — a peer that corrupts, truncates, replays, or drops
// must surface as a typed TransportStatus on the affected ranks, never as a
// hang or a crash.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/distributed/transport/fault_injection.h"
#include "src/distributed/transport/frame_digest.h"
#include "src/distributed/transport/inproc_transport.h"
#include "src/distributed/transport/integrity_transport.h"
#include "src/distributed/transport/tcp_transport.h"

namespace egeria {
namespace {

// ---- FrameDigest64 ----

TEST(FrameDigest, DeterministicAndSensitive) {
  std::vector<uint8_t> buf(1000);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const uint64_t d = FrameDigest64(buf.data(), buf.size());
  EXPECT_EQ(d, FrameDigest64(buf.data(), buf.size()));
  // Every single-bit flip, anywhere (block lanes and tail), changes the digest.
  for (size_t off : {size_t{0}, size_t{7}, size_t{63}, size_t{64}, size_t{640},
                     buf.size() - 1}) {
    buf[off] ^= 0x01;
    EXPECT_NE(d, FrameDigest64(buf.data(), buf.size())) << "offset " << off;
    buf[off] ^= 0x01;
  }
  // Length is part of the digest: a truncated frame never matches.
  EXPECT_NE(d, FrameDigest64(buf.data(), buf.size() - 1));
  EXPECT_NE(FrameDigest64(buf.data(), 0), FrameDigest64(buf.data(), 1));
}

// ---- FaultPlan parsing (the strict --fault contract) ----

TEST(FaultPlan, ParsesExplicitEntries) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("corrupt:6,delay:9,hang:0", 3, 1, &plan, &error))
      << error;
  ASSERT_EQ(plan.events.size(), 3U);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCorrupt);
  EXPECT_EQ(plan.events[0].iter, 6);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kHang);
  EXPECT_EQ(plan.events[2].iter, 0);
  EXPECT_TRUE(FaultPlan::Parse("", 3, 1, &plan, &error));
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, RejectsUnknownKindsAndMalformedIterations) {
  FaultPlan plan;
  std::string error;
  // Unknown kind: a typo'd chaos spec must be a hard error, not a clean run.
  EXPECT_FALSE(FaultPlan::Parse("corupt:6", 3, 1, &plan, &error));
  EXPECT_NE(error.find("unknown fault kind"), std::string::npos) << error;
  EXPECT_NE(error.find("valid forms"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::Parse("corrupt:six", 3, 1, &plan, &error));
  EXPECT_NE(error.find("malformed fault iteration"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::Parse("corrupt", 3, 1, &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("corrupt:", 3, 1, &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse(":6", 3, 1, &plan, &error));
  // Only process-level faults may fire "before wiring".
  EXPECT_FALSE(FaultPlan::Parse("corrupt:0", 3, 1, &plan, &error));
  EXPECT_NE(error.find("positive iteration"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::Parse("drop:-2", 3, 1, &plan, &error));
  // seed must stand alone and be a non-negative integer.
  EXPECT_FALSE(FaultPlan::Parse("seed:7,corrupt:3", 3, 1, &plan, &error));
  EXPECT_NE(error.find("cannot be combined"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::Parse("seed:x", 3, 1, &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("seed:-1", 3, 1, &plan, &error));
}

TEST(FaultPlan, SeedExpansionIsDeterministicAndTargetsOneRank) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    for (int world : {2, 3, 4}) {
      int targeted = 0;
      for (int rank = 0; rank < world; ++rank) {
        const FaultPlan a = FaultPlan::FromSeed(seed, world, rank);
        const FaultPlan b = FaultPlan::FromSeed(seed, world, rank);
        ASSERT_EQ(a.events.size(), b.events.size());
        if (!a.events.empty()) {
          ++targeted;
          ASSERT_EQ(a.events.size(), 1U);
          EXPECT_EQ(a.events[0].kind, b.events[0].kind);
          EXPECT_EQ(a.events[0].iter, b.events[0].iter);
          EXPECT_GE(a.events[0].iter, 2);
          EXPECT_LE(a.events[0].iter, 11);
        }
      }
      // One seed = one fault on exactly one rank of the world.
      EXPECT_EQ(targeted, 1) << "seed " << seed << " world " << world;
    }
  }
  // The seed space reaches every kind (the chaos matrix depends on this).
  std::set<std::string> kinds;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    for (int rank = 0; rank < 3; ++rank) {
      const FaultPlan p = FaultPlan::FromSeed(seed, 3, rank);
      for (const FaultEvent& ev : p.events) {
        kinds.insert(FaultKindName(ev.kind));
      }
    }
  }
  for (const char* kind : {"corrupt", "truncate", "delay", "drop", "hang", "exit"}) {
    EXPECT_TRUE(kinds.count(kind)) << kind << " never derived from seeds 1..64";
  }
}

// ---- World harness over both backends ----

enum class TransportCase { kInproc, kTcp };

const char* TransportName(TransportCase c) {
  return c == TransportCase::kInproc ? "inproc" : "tcp";
}

// Runs `body(rank, transport)` on `world` rank threads wired by the given
// backend (inproc mailboxes or real localhost TCP sockets).
void RunWorld(TransportCase kind, int world,
              const std::function<void(int, Transport&)>& body) {
  std::vector<std::thread> threads;
  if (kind == TransportCase::kInproc) {
    InprocTransportGroup group(world);
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] { body(r, group.Get(r)); });
    }
    for (auto& t : threads) {
      t.join();
    }
    return;
  }
  char tmpl[] = "/tmp/egeria-fault-test-XXXXXX";
  ASSERT_NE(nullptr, mkdtemp(tmpl));
  const std::string rendezvous = std::string(tmpl) + "/rendezvous";
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      TcpTransportOptions opts;
      opts.rank = r;
      opts.world = world;
      opts.rendezvous_file = rendezvous;
      opts.io_timeout_s = 30.0;  // backstop: these tests must not hang
      std::unique_ptr<Transport> transport = MakeTcpTransport(opts);
      body(r, *transport);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  unlink(rendezvous.c_str());
  rmdir(tmpl);
}

// Ring-neighbor of the faulty rank: the receiver that must detect the fault.
int NextRank(int rank, int world) { return (rank + 1) % world; }

// Runs `iters` world-synchronous ring exchanges on every rank, with rank
// `faulty` owning a FaultInjectingTransport armed from `plan`. Every rank's
// transport is wrapped in IntegrityTransport (the production stack order).
// Records each rank's FIRST non-ok status.
std::vector<TransportStatus> RingRounds(TransportCase kind, int world,
                                        int faulty, const FaultPlan& plan,
                                        int64_t iters) {
  std::vector<TransportStatus> first_error(static_cast<size_t>(world));
  RunWorld(kind, world, [&](int rank, Transport& base) {
    FaultPlan mine = rank == faulty ? plan : FaultPlan{};
    FaultInjectingTransport injector(&base, mine);
    IntegrityTransport checked(&injector);
    std::vector<uint8_t> send(96);
    std::vector<uint8_t> recv(96);
    for (int64_t iter = 1; iter <= iters; ++iter) {
      injector.BeginIteration(iter);
      for (size_t i = 0; i < send.size(); ++i) {
        send[i] = static_cast<uint8_t>(rank * 31 + iter * 7 + i);
      }
      const TransportStatus st =
          checked.RingExchange(send.data(), static_cast<int64_t>(send.size()),
                               recv.data(), static_cast<int64_t>(recv.size()));
      if (!st.ok()) {
        first_error[static_cast<size_t>(rank)] = st;
        return;  // an errored rank leaves; peers must still unwind with errors
      }
      // A clean exchange must deliver the previous rank's exact payload.
      const int prev = (rank + world - 1) % world;
      for (size_t i = 0; i < recv.size(); ++i) {
        ASSERT_EQ(recv[i], static_cast<uint8_t>(prev * 31 + iter * 7 + i))
            << TransportName(kind) << " rank " << rank << " iter " << iter;
      }
    }
  });
  return first_error;
}

TEST(TransportFaults, CleanWorldRoundTripsThroughIntegrityLayer) {
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    for (int world : {2, 3}) {
      const auto errors = RingRounds(kind, world, 0, FaultPlan{}, 4);
      for (int r = 0; r < world; ++r) {
        EXPECT_TRUE(errors[static_cast<size_t>(r)].ok())
            << TransportName(kind) << " rank " << r << ": "
            << errors[static_cast<size_t>(r)].message;
      }
    }
  }
}

TEST(TransportFaults, CorruptFrameSurfacesAsChecksumErrorAtReceiver) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("corrupt:2", 3, 1, &plan, &error)) << error;
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    const int faulty = 1;
    const auto errors = RingRounds(kind, 3, faulty, plan, 3);
    const TransportStatus& at_receiver =
        errors[static_cast<size_t>(NextRank(faulty, 3))];
    EXPECT_EQ(at_receiver.code, TransportError::kChecksum)
        << TransportName(kind) << ": " << at_receiver.message;
    EXPECT_NE(at_receiver.message.find("corrupted in transit"), std::string::npos)
        << at_receiver.message;
  }
}

TEST(TransportFaults, TruncatedFrameSurfacesAsSequenceErrorAtReceiver) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("truncate:2", 3, 1, &plan, &error)) << error;
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    const int faulty = 1;
    const auto errors = RingRounds(kind, 3, faulty, plan, 3);
    const TransportStatus& at_receiver =
        errors[static_cast<size_t>(NextRank(faulty, 3))];
    EXPECT_EQ(at_receiver.code, TransportError::kSequence)
        << TransportName(kind) << ": " << at_receiver.message;
  }
}

TEST(TransportFaults, ReplayedFrameSurfacesAsSequenceErrorAtReceiver) {
  // dup needs a captured previous frame: iteration 1 is clean, the replay
  // fires at iteration 2 and must be caught as a stale sequence number.
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("dup:2", 3, 1, &plan, &error)) << error;
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    const int faulty = 1;
    const auto errors = RingRounds(kind, 3, faulty, plan, 3);
    const TransportStatus& at_receiver =
        errors[static_cast<size_t>(NextRank(faulty, 3))];
    EXPECT_EQ(at_receiver.code, TransportError::kSequence)
        << TransportName(kind) << ": " << at_receiver.message;
  }
}

TEST(TransportFaults, DelayIsTransientAndTheWorldStillCompletes) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("delay:2", 3, 1, &plan, &error)) << error;
  plan.events[0].delay_ms = 50;  // keep the suite fast
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    const auto errors = RingRounds(kind, 3, 1, plan, 3);
    for (int r = 0; r < 3; ++r) {
      EXPECT_TRUE(errors[static_cast<size_t>(r)].ok())
          << TransportName(kind) << " rank " << r << ": "
          << errors[static_cast<size_t>(r)].message;
    }
  }
}

TEST(TransportFaults, DroppedConnectionSurfacesTypedErrorsEverywhere) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("drop:2", 3, 1, &plan, &error)) << error;
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    const int faulty = 1;
    const auto errors = RingRounds(kind, 3, faulty, plan, 4);
    // The dropping rank reports the drop itself...
    EXPECT_EQ(errors[static_cast<size_t>(faulty)].code,
              TransportError::kPeerClosed)
        << TransportName(kind) << ": " << errors[static_cast<size_t>(faulty)].message;
    EXPECT_NE(errors[static_cast<size_t>(faulty)].message.find("fault injection"),
              std::string::npos);
    // ...and every survivor unwinds with a typed error (kAborted through the
    // poisoned inproc group, kPeerClosed/kAborted over dead sockets) instead
    // of hanging in its next collective.
    for (int r = 0; r < 3; ++r) {
      if (r == faulty) {
        continue;
      }
      const TransportStatus& st = errors[static_cast<size_t>(r)];
      EXPECT_FALSE(st.ok()) << TransportName(kind) << " rank " << r
                            << " never observed the drop";
      EXPECT_TRUE(st.code == TransportError::kPeerClosed ||
                  st.code == TransportError::kAborted ||
                  st.code == TransportError::kSequence)
          << TransportName(kind) << " rank " << r << ": " << st.message;
    }
  }
}

// A peer that disappears between collectives (clean socket close / poisoned
// group, no fault injector involved): Barrier and Broadcast on the survivors
// must return typed errors, never hang.
TEST(TransportFaults, PeerExitFailsBarrierAndBroadcastWithTypedErrors) {
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    for (int world : {2, 3}) {
      std::vector<TransportStatus> barrier_st(static_cast<size_t>(world));
      std::vector<TransportStatus> bcast_st(static_cast<size_t>(world));
      RunWorld(kind, world, [&](int rank, Transport& transport) {
        if (rank == world - 1) {
          // Dies "mid-run": poison + close without participating further.
          transport.LocalAbort(TransportStatus::Error(
              TransportError::kPeerClosed, "test: rank exits early"));
          return;
        }
        barrier_st[static_cast<size_t>(rank)] = transport.Barrier();
        const uint32_t word = 0x5A5A5A5AU;
        std::vector<uint8_t> out;
        bcast_st[static_cast<size_t>(rank)] = transport.Broadcast(
            rank == 0 ? &word : nullptr, rank == 0 ? sizeof(word) : 0, &out);
      });
      for (int r = 0; r + 1 < world; ++r) {
        EXPECT_FALSE(barrier_st[static_cast<size_t>(r)].ok() &&
                     bcast_st[static_cast<size_t>(r)].ok())
            << TransportName(kind) << " world " << world << " rank " << r
            << " noticed nothing";
        for (const TransportStatus& st : {barrier_st[static_cast<size_t>(r)],
                                          bcast_st[static_cast<size_t>(r)]}) {
          if (!st.ok()) {
            EXPECT_TRUE(st.code == TransportError::kPeerClosed ||
                        st.code == TransportError::kAborted)
                << TransportName(kind) << " rank " << r << ": " << st.message;
          }
        }
      }
    }
  }
}

// After any integrity failure the endpoint is latched: every later collective
// returns the same first error instead of shipping more suspect frames.
TEST(TransportFaults, IntegrityFailureLatchesTheEndpoint) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("corrupt:1", 2, 0, &plan, &error)) << error;
  RunWorld(TransportCase::kInproc, 2, [&](int rank, Transport& base) {
    FaultPlan mine = rank == 0 ? plan : FaultPlan{};
    FaultInjectingTransport injector(&base, mine);
    IntegrityTransport checked(&injector);
    injector.BeginIteration(1);
    std::vector<uint8_t> buf(64, static_cast<uint8_t>(rank));
    std::vector<uint8_t> got(64);
    const TransportStatus st = checked.RingExchange(
        buf.data(), 64, got.data(), 64);
    if (rank == 1) {
      ASSERT_EQ(st.code, TransportError::kChecksum) << st.message;
      const TransportStatus again = checked.RingExchange(
          buf.data(), 64, got.data(), 64);
      EXPECT_EQ(again.code, TransportError::kChecksum);
      EXPECT_EQ(again.message, st.message);
      // The group was poisoned with the original verification failure, so
      // even the payload-free Barrier reports it (first reason wins).
      EXPECT_EQ(checked.Barrier().code, TransportError::kChecksum);
    }
  });
}

}  // namespace
}  // namespace egeria
