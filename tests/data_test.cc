// Dataset and loader properties. The load-bearing invariant is determinism: a sample
// (including augmentation) is a pure function of (seed, index), which the activation
// cache requires (paper S4.3).
#include <gtest/gtest.h>

#include "src/data/dataloader.h"
#include "src/data/synthetic_image.h"
#include "src/data/synthetic_seg.h"
#include "src/data/synthetic_text.h"

namespace egeria {
namespace {

TEST(SyntheticImage, SamplesDeterministicAcrossFetches) {
  SyntheticImageConfig cfg;
  cfg.num_samples = 64;
  SyntheticImageDataset ds(cfg);
  Batch a = ds.GetBatch({3, 17, 42});
  Batch b = ds.GetBatch({3, 17, 42});
  for (int64_t i = 0; i < a.input.NumEl(); ++i) {
    ASSERT_EQ(a.input.Data()[i], b.input.Data()[i]);
  }
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticImage, LabelsFollowIndexModuloClasses) {
  SyntheticImageConfig cfg;
  cfg.num_classes = 7;
  cfg.num_samples = 70;
  SyntheticImageDataset ds(cfg);
  Batch b = ds.GetBatch({0, 7, 13});
  EXPECT_EQ(b.labels[0], 0);
  EXPECT_EQ(b.labels[1], 0);
  EXPECT_EQ(b.labels[2], 6);
}

TEST(SyntheticImage, SaltChangesSamplesNotClasses) {
  SyntheticImageConfig train_cfg;
  train_cfg.num_samples = 32;
  train_cfg.noise_std = 0.1F;
  SyntheticImageDataset train(train_cfg);
  auto val_cfg = train_cfg;
  val_cfg.sample_salt = 999999;
  SyntheticImageDataset val(val_cfg);

  Batch a = train.GetBatch({5});
  Batch b = val.GetBatch({5});
  // Different pixel values (different augmentation/noise)...
  double diff = 0.0;
  for (int64_t i = 0; i < a.input.NumEl(); ++i) {
    diff += std::abs(a.input.Data()[i] - b.input.Data()[i]);
  }
  EXPECT_GT(diff, 1.0);
  // ... but same label and same underlying class prototype (high correlation of the
  // two samples with each other, low with a different class).
  EXPECT_EQ(a.labels[0], b.labels[0]);
}

TEST(SyntheticImage, SameClassMoreSimilarThanCrossClass) {
  SyntheticImageConfig cfg;
  cfg.num_samples = 64;
  cfg.num_classes = 4;
  cfg.noise_std = 0.1F;
  cfg.augment = false;
  SyntheticImageDataset ds(cfg);
  // Samples 0 and 4 share class 0; sample 1 is class 1.
  Batch b = ds.GetBatch({0, 4, 1});
  const int64_t n = b.input.NumEl() / 3;
  auto dist = [&](int64_t i, int64_t j) {
    double d = 0;
    for (int64_t k = 0; k < n; ++k) {
      const double v = b.input.Data()[i * n + k] - b.input.Data()[j * n + k];
      d += v * v;
    }
    return d;
  };
  EXPECT_LT(dist(0, 1), dist(0, 2));
}

TEST(SyntheticSeg, LabelsMatchGeometry) {
  SyntheticSegConfig cfg;
  cfg.num_samples = 16;
  SyntheticSegDataset ds(cfg);
  Batch b = ds.GetBatch({0, 1});
  EXPECT_EQ(static_cast<int64_t>(b.labels.size()), 2 * cfg.height * cfg.width);
  // At least one non-background pixel per sample, all labels in range.
  for (int64_t s = 0; s < 2; ++s) {
    int nonbg = 0;
    for (int64_t i = 0; i < cfg.height * cfg.width; ++i) {
      const int label = b.labels[static_cast<size_t>(s * cfg.height * cfg.width + i)];
      EXPECT_GE(label, 0);
      EXPECT_LT(label, cfg.num_classes);
      if (label != 0) {
        ++nonbg;
      }
    }
    EXPECT_GT(nonbg, 0);
  }
}

TEST(SyntheticTranslation, TargetFollowsReversalRule) {
  SyntheticTranslationConfig cfg;
  cfg.vocab = 16;
  cfg.seq_len = 6;
  cfg.num_samples = 8;
  SyntheticTranslationDataset ds(cfg);
  Batch b = ds.GetBatch({3});
  // Decoder input is [BOS, y0..y{t-2}]; labels are y0..y{t-1}.
  EXPECT_EQ(static_cast<int>(b.target_input.At(0, 0)), kBosToken);
  for (int64_t j = 1; j < cfg.seq_len; ++j) {
    EXPECT_EQ(static_cast<int>(b.target_input.At(0, j)),
              b.labels[static_cast<size_t>(j - 1)]);
  }
  // The same source token always maps to the same target token (fixed permutation):
  // y[i] depends only on src[t-1-i].
  Batch c = ds.GetBatch({3});
  EXPECT_EQ(b.labels, c.labels);
}

TEST(SyntheticQa, SpanIsMarked) {
  SyntheticQaConfig cfg;
  cfg.seq_len = 16;
  cfg.num_samples = 8;
  SyntheticQaDataset ds(cfg);
  Batch b = ds.GetBatch({2, 5});
  for (int64_t s = 0; s < 2; ++s) {
    const auto [start, end] = b.spans[static_cast<size_t>(s)];
    ASSERT_GE(start, 1);
    ASSERT_LE(end, cfg.seq_len - 2);
    ASSERT_LE(start, end);
    EXPECT_EQ(static_cast<int>(b.input.At(s, start - 1)), kMarkToken);
    EXPECT_EQ(static_cast<int>(b.input.At(s, end + 1)), kMarkToken);
  }
}

TEST(DataLoader, EpochPermutationDeterministic) {
  SyntheticImageConfig cfg;
  cfg.num_samples = 64;
  SyntheticImageDataset ds(cfg);
  DataLoader a(ds, 8, /*shuffle=*/true, 7);
  DataLoader b(ds, 8, /*shuffle=*/true, 7);
  a.StartEpoch(3);
  b.StartEpoch(3);
  EXPECT_EQ(a.BatchIndices(2), b.BatchIndices(2));
  a.StartEpoch(4);
  EXPECT_NE(a.BatchIndices(2), b.BatchIndices(2));
}

TEST(DataLoader, UpcomingIndicesSeeTheFuture) {
  SyntheticImageConfig cfg;
  cfg.num_samples = 64;
  SyntheticImageDataset ds(cfg);
  DataLoader loader(ds, 8, true, 11);
  loader.StartEpoch(0);
  auto up = loader.UpcomingIndices(2, 2);
  ASSERT_EQ(up.size(), 16u);
  auto b2 = loader.BatchIndices(2);
  auto b3 = loader.BatchIndices(3);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(up[static_cast<size_t>(i)], b2[static_cast<size_t>(i)]);
    EXPECT_EQ(up[static_cast<size_t>(i + 8)], b3[static_cast<size_t>(i)]);
  }
  // Past the end: truncated, not wrapped.
  EXPECT_TRUE(loader.UpcomingIndices(loader.NumBatches(), 2).empty());
}

TEST(DataLoader, LimitSamplesSubsets) {
  SyntheticImageConfig cfg;
  cfg.num_samples = 128;
  SyntheticImageDataset ds(cfg);
  DataLoader loader(ds, 8, false, 1, /*limit_samples=*/32);
  EXPECT_EQ(loader.NumBatches(), 4);
}

TEST(DataLoader, PermutationCoversDatasetOnce) {
  SyntheticImageConfig cfg;
  cfg.num_samples = 40;
  SyntheticImageDataset ds(cfg);
  DataLoader loader(ds, 10, true, 5);
  loader.StartEpoch(1);
  std::vector<int64_t> seen;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    for (int64_t id : loader.BatchIndices(b)) {
      seen.push_back(id);
    }
  }
  std::sort(seen.begin(), seen.end());
  for (int64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace egeria
