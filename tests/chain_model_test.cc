// ChainModel semantics — the invariants Egeria's freezing machinery relies on:
//  - ForwardFrom(k, boundary_activation) reproduces the full forward exactly;
//  - BackwardTo(stop) leaves frozen-stage gradients untouched;
//  - inference clones (float) match the training model in eval mode;
//  - the Transformer chain routes memory gradients correctly (checked numerically);
//  - partitioner invariants (balance, contiguity, protected head).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/module_partitioner.h"
#include "src/models/bert.h"
#include "src/models/deeplab.h"
#include "src/models/mobilenetv2.h"
#include "src/models/resnet.h"
#include "src/models/transformer.h"
#include "src/nn/loss.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

std::unique_ptr<StageChainModel> SmallResNet(int stages = 4) {
  Rng rng(21);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 2;
  mcfg.base_width = 4;
  return PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng),
                            PartitionConfig{.target_modules = stages});
}

TEST(StageChainModel, ForwardFromBoundaryMatchesFullForward) {
  auto model = SmallResNet();
  model->SetTraining(false);  // Deterministic (no BN batch-stats updates).
  Rng rng(22);
  Tensor x = Tensor::Randn({2, 3, 12, 12}, rng);
  Tensor full = model->ForwardFrom(0, x);
  for (int k = 1; k < model->NumStages(); ++k) {
    model->ForwardFrom(0, x);
    Tensor boundary = model->StageOutput(k - 1);
    Tensor resumed = model->ForwardFrom(k, boundary);
    ASSERT_TRUE(resumed.SameShape(full));
    for (int64_t i = 0; i < full.NumEl(); ++i) {
      ASSERT_EQ(resumed.Data()[i], full.Data()[i]) << "stage " << k;
    }
  }
}

TEST(StageChainModel, BackwardToStopsAtFrontier) {
  auto model = SmallResNet();
  Rng rng(23);
  Tensor x = Tensor::Randn({2, 3, 12, 12}, rng);
  Tensor out = model->ForwardFrom(0, x);
  Tensor grad = Tensor::Randn(out.Shape(), rng);

  model->ZeroGrad();
  model->BackwardTo(2, grad);
  // Frozen prefix (stages 0-1): zero grads. Active suffix: some non-zero grads.
  for (int s = 0; s < 2; ++s) {
    for (Parameter* p : model->StageParams(s)) {
      EXPECT_FLOAT_EQ(p->grad.AbsMax(), 0.0F) << p->name;
    }
  }
  double active_mass = 0.0;
  for (int s = 2; s < model->NumStages(); ++s) {
    for (Parameter* p : model->StageParams(s)) {
      active_mass += p->grad.AbsMax();
    }
  }
  EXPECT_GT(active_mass, 0.0);
}

TEST(StageChainModel, PartialBackwardMatchesFullBackwardOnSuffix) {
  // Gradients of active stages must be identical whether or not the frozen prefix
  // participates in backprop.
  auto model_a = SmallResNet();
  auto model_b = SmallResNet();
  model_b->CopyStateFrom(*model_a);
  Rng rng(24);
  Tensor x = Tensor::Randn({2, 3, 12, 12}, rng);
  Tensor ga = Tensor::Randn({2, 10}, rng);

  model_a->ForwardFrom(0, x);
  model_a->ZeroGrad();
  model_a->BackwardTo(0, ga);  // Full backprop.

  model_b->ForwardFrom(0, x);
  model_b->ZeroGrad();
  model_b->BackwardTo(2, ga);  // Skip stages 0-1.

  for (int s = 2; s < model_a->NumStages(); ++s) {
    auto pa = model_a->StageParams(s);
    auto pb = model_b->StageParams(s);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      for (int64_t j = 0; j < pa[i]->grad.NumEl(); ++j) {
        ASSERT_NEAR(pa[i]->grad.Data()[j], pb[i]->grad.Data()[j], 1e-6F)
            << pa[i]->name;
      }
    }
  }
}

TEST(StageChainModel, FloatInferenceCloneMatchesEvalModel) {
  auto model = SmallResNet();
  // Train-ish perturbation so running stats differ from init.
  Rng rng(25);
  for (int i = 0; i < 3; ++i) {
    model->ForwardFrom(0, Tensor::Randn({4, 3, 12, 12}, rng));
  }
  model->SetTraining(false);
  InferenceFactory factory;
  auto clone = model->CloneForInference(factory);
  Tensor x = Tensor::Randn({2, 3, 12, 12}, rng);
  Tensor a = model->ForwardFrom(0, x);
  Tensor b = clone->ForwardFrom(0, x);
  for (int64_t i = 0; i < a.NumEl(); ++i) {
    ASSERT_NEAR(a.Data()[i], b.Data()[i], 1e-5F);
  }
}

TEST(StageChainModel, FrozenPrefixForwardPrecisionSubstitution) {
  auto model = SmallResNet();
  model->SetTraining(false);
  Rng rng(55);
  Tensor x = Tensor::Randn({2, 3, 12, 12}, rng);
  Tensor fp32_out = model->ForwardFrom(0, x);

  // Substitute stages 0-1 with fp16 forwards (the frozen prefix).
  model->SetStageFrozen(0, true);
  model->SetStageFrozen(1, true);
  ASSERT_TRUE(model->SetStageForwardPrecision(0, Precision::kFloat16));
  ASSERT_TRUE(model->SetStageForwardPrecision(1, Precision::kFloat16));
  Tensor mixed_out = model->ForwardFrom(0, x);
  ASSERT_TRUE(mixed_out.SameShape(fp32_out));
  // Close to the fp32 forward (half-precision storage noise only)...
  double err = 0.0;
  for (int64_t i = 0; i < fp32_out.NumEl(); ++i) {
    err += std::abs(static_cast<double>(mixed_out.Data()[i]) - fp32_out.Data()[i]);
  }
  err /= static_cast<double>(fp32_out.NumEl());
  EXPECT_LT(err, 0.05 * std::max<double>(1.0, fp32_out.AbsMax()));
  // ...but not bitwise equal: the substitute kernels must actually be in use.
  bool identical = true;
  for (int64_t i = 0; i < fp32_out.NumEl() && identical; ++i) {
    identical = mixed_out.Data()[i] == fp32_out.Data()[i];
  }
  EXPECT_FALSE(identical);

  // Restoring fp32 reinstates the exact original forward (checked before any
  // training-mode forward so BatchNorm statistics are still untouched).
  ASSERT_TRUE(model->SetStageForwardPrecision(0, Precision::kFloat32));
  ASSERT_TRUE(model->SetStageForwardPrecision(1, Precision::kFloat32));
  Tensor restored = model->ForwardFrom(0, x);
  for (int64_t i = 0; i < fp32_out.NumEl(); ++i) {
    ASSERT_EQ(restored.Data()[i], fp32_out.Data()[i]);
  }

  // Backward through the active suffix works; through a substituted stage dies.
  ASSERT_TRUE(model->SetStageForwardPrecision(0, Precision::kFloat16));
  ASSERT_TRUE(model->SetStageForwardPrecision(1, Precision::kFloat16));
  model->SetTraining(true);
  model->ForwardFrom(0, x);
  Tensor grad = Tensor::Randn({2, 10}, rng);
  model->ZeroGrad();
  model->BackwardTo(2, grad);
  EXPECT_DEATH(model->BackwardTo(0, grad), "reduced-precision");
}

TEST(StageChainModel, ForwardPrefixMatchesStageOutputs) {
  auto model = SmallResNet();
  model->SetTraining(false);
  Rng rng(26);
  Tensor x = Tensor::Randn({2, 3, 12, 12}, rng);
  model->ForwardFrom(0, x);
  Tensor want = model->StageOutput(1);
  Tensor got = model->ForwardPrefix(1, x);
  for (int64_t i = 0; i < want.NumEl(); ++i) {
    ASSERT_EQ(got.Data()[i], want.Data()[i]);
  }
}

TEST(Partitioner, BalancedContiguousGroups) {
  Rng rng(27);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 9;  // ResNet-56
  mcfg.base_width = 4;
  PartitionSummary summary;
  auto model = PartitionIntoChain("r56", BuildCifarResNetBlocks(mcfg, rng),
                                  PartitionConfig{.target_modules = 7}, &summary);
  EXPECT_EQ(model->NumStages(), static_cast<int>(summary.module_names.size()));
  EXPECT_GE(model->NumStages(), 5);
  EXPECT_LE(model->NumStages(), 9);
  // All blocks preserved.
  int blocks = 0;
  for (int c : summary.blocks_per_module) {
    blocks += c;
  }
  EXPECT_EQ(blocks, 2 + 27);  // stem + 27 residual blocks + head
  // Deep heavy modules are split finer than light front modules: no module should
  // carry more than ~2.5x the ideal share.
  int64_t total = 0;
  for (int64_t m : summary.module_params) {
    total += m;
  }
  for (size_t i = 0; i + 1 < summary.module_params.size(); ++i) {
    EXPECT_LT(summary.module_params[i],
              2.5 * static_cast<double>(total) / summary.module_params.size());
  }
}

TEST(Partitioner, PatternBoundaryRespected) {
  Rng rng(28);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 2;
  mcfg.base_width = 4;
  PartitionSummary summary;
  PartitionConfig pcfg;
  pcfg.target_modules = 3;
  pcfg.boundary_pattern = "layer3";  // Force a cut before layer3.0.
  PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng), pcfg, &summary);
  bool found = false;
  for (const auto& name : summary.module_names) {
    if (name.rfind("layer3.0", 0) == 0) {
      found = true;  // A module starts exactly at layer3.0.
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelZoo, AllModelsForwardAndBackward) {
  Rng rng(29);
  struct Case {
    std::unique_ptr<StageChainModel> model;
    Tensor input;
    int64_t out_classes;
  };
  std::vector<Case> cases;
  {
    MobileNetV2Config cfg;
    cfg.channel_divisor = 16;
    cfg.num_classes = 4;
    cases.push_back({PartitionIntoChain("mbv2", BuildMobileNetV2Blocks(cfg, rng),
                                        PartitionConfig{.target_modules = 5}),
                     Tensor::Randn({2, 3, 16, 16}, rng), 4});
  }
  {
    BottleneckResNetConfig cfg;
    cfg.stage_blocks = {1, 1, 1, 1};
    cfg.base_width = 4;
    cfg.num_classes = 4;
    cases.push_back({PartitionIntoChain("r50", BuildBottleneckResNetBlocks(cfg, rng),
                                        PartitionConfig{.target_modules = 4}),
                     Tensor::Randn({2, 3, 16, 16}, rng), 4});
  }
  for (auto& c : cases) {
    Tensor out = c.model->ForwardFrom(0, c.input);
    EXPECT_EQ(out.Size(0), 2);
    EXPECT_EQ(out.Size(1), c.out_classes);
    LossResult loss = SoftmaxCrossEntropy(out, {0, 1});
    c.model->ZeroGrad();
    c.model->BackwardTo(0, loss.grad);  // Must not crash; grads flow.
    double mass = 0.0;
    for (Parameter* p : c.model->ParamsFrom(0)) {
      mass += p->grad.AbsMax();
    }
    EXPECT_GT(mass, 0.0);
  }
}

TEST(DeepLab, ProducesDenseLogitsAndTrains) {
  Rng rng(30);
  DeepLabConfig cfg;
  cfg.backbone_blocks_per_stage = 1;
  cfg.base_width = 4;
  cfg.num_classes = 3;
  cfg.output_h = 12;
  cfg.output_w = 12;
  auto model = PartitionIntoChain("dl", BuildDeepLabBlocks(cfg, rng),
                                  PartitionConfig{.target_modules = 4});
  Tensor x = Tensor::Randn({2, 3, 12, 12}, rng);
  Tensor out = model->ForwardFrom(0, x);
  ASSERT_EQ(out.Dim(), 4);
  EXPECT_EQ(out.Size(1), 3);
  EXPECT_EQ(out.Size(2), 12);
  EXPECT_EQ(out.Size(3), 12);
  std::vector<int> labels(2 * 12 * 12, 1);
  LossResult loss = PixelwiseCrossEntropy(out, labels);
  model->ZeroGrad();
  model->BackwardTo(0, loss.grad);
}

class TransformerChainTest : public ::testing::Test {
 protected:
  static TransformerConfig SmallConfig() {
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.dim = 8;
    cfg.heads = 2;
    cfg.ffn_dim = 16;
    cfg.num_encoder_layers = 2;
    cfg.num_decoder_layers = 2;
    cfg.max_len = 8;
    return cfg;
  }

  static Batch SmallBatch(Rng& rng) {
    Batch batch;
    batch.input = Tensor({2, 6});
    batch.target_input = Tensor({2, 6});
    for (int64_t i = 0; i < 12; ++i) {
      batch.input.Data()[i] = static_cast<float>(3 + rng.NextBelow(12));
      batch.target_input.Data()[i] = static_cast<float>(3 + rng.NextBelow(12));
    }
    batch.labels.assign(12, 5);
    return batch;
  }
};

TEST_F(TransformerChainTest, StageLayoutAndMemorySkip) {
  Rng rng(31);
  TransformerChainModel model("t", SmallConfig(), rng);
  EXPECT_EQ(model.NumStages(), 2 + 2 + 2);
  EXPECT_EQ(model.MaxForwardSkipStage(), 3);  // embed, enc0, enc1, memory entry.
  model.SetTraining(false);
  Batch batch = SmallBatch(rng);
  model.SetBatch(batch);
  Tensor full = model.ForwardFrom(0, batch.input);

  // Re-enter at the encoder memory boundary.
  Tensor memory = model.StageOutput(2);  // output of enc1 == memory
  Tensor resumed = model.ForwardFrom(3, memory);
  ASSERT_TRUE(resumed.SameShape(full));
  for (int64_t i = 0; i < full.NumEl(); ++i) {
    ASSERT_EQ(resumed.Data()[i], full.Data()[i]);
  }
}

TEST_F(TransformerChainTest, MemoryGradientsFlowIntoEncoders) {
  Rng rng(32);
  TransformerChainModel model("t", SmallConfig(), rng);
  Batch batch = SmallBatch(rng);
  model.SetBatch(batch);
  Tensor out = model.ForwardFrom(0, batch.input);
  LossResult loss = SequenceCrossEntropy(out, batch.labels);
  model.ZeroGrad();
  model.BackwardTo(0, loss.grad);
  // Encoder parameters receive gradient only through decoder cross-attention memory.
  double enc_mass = 0.0;
  for (Parameter* p : model.StageParams(1)) {
    enc_mass += p->grad.AbsMax();
  }
  EXPECT_GT(enc_mass, 0.0);
  double embed_mass = 0.0;
  for (Parameter* p : model.StageParams(0)) {
    embed_mass += p->grad.AbsMax();
  }
  EXPECT_GT(embed_mass, 0.0);
}

TEST_F(TransformerChainTest, EncoderGradCheckThroughMemoryRouting) {
  // Numeric check of an encoder-layer weight: the analytic gradient crosses the
  // decoder stack and the accumulated memory gradient — the riskiest wiring here.
  Rng rng(33);
  TransformerChainModel model("t", SmallConfig(), rng);
  Batch batch = SmallBatch(rng);
  model.SetBatch(batch);

  auto loss_value = [&]() -> double {
    Tensor out = model.ForwardFrom(0, batch.input);
    return SequenceCrossEntropy(out, batch.labels).loss;
  };
  Tensor out = model.ForwardFrom(0, batch.input);
  LossResult loss = SequenceCrossEntropy(out, batch.labels);
  model.ZeroGrad();
  model.BackwardTo(0, loss.grad);

  int checked = 0;
  for (Parameter* p : model.StageParams(1)) {  // First encoder layer.
    const int64_t n = p->value.NumEl();
    for (int64_t i = 0; i < n && checked < 8; i += std::max<int64_t>(1, n / 2)) {
      const float analytic = p->grad.Data()[i];
      float* ptr = p->value.Data() + i;
      const float saved = *ptr;
      const double eps = 1e-2;
      *ptr = saved + static_cast<float>(eps);
      const double up = loss_value();
      *ptr = saved - static_cast<float>(eps);
      const double down = loss_value();
      *ptr = saved;
      const double numeric = (up - down) / (2 * eps);
      const double denom = std::max({std::abs(numeric), std::abs(double{analytic}), 0.02});
      EXPECT_LT(std::abs(analytic - numeric) / denom, 0.12)
          << p->name << "[" << i << "] analytic=" << analytic << " numeric=" << numeric;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_F(TransformerChainTest, FrozenDecoderPrefixSkipsEncoderBackward) {
  Rng rng(34);
  TransformerChainModel model("t", SmallConfig(), rng);
  Batch batch = SmallBatch(rng);
  model.SetBatch(batch);
  Tensor out = model.ForwardFrom(0, batch.input);
  LossResult loss = SequenceCrossEntropy(out, batch.labels);
  model.ZeroGrad();
  // Frontier inside the decoder region: stages 0..3 frozen (embed+encs+dec0? no:
  // stage 4 = dec1). stop=4 keeps only dec1 and the projection active.
  model.BackwardTo(4, loss.grad);
  for (int s = 0; s <= 3; ++s) {
    for (Parameter* p : model.StageParams(s)) {
      EXPECT_FLOAT_EQ(p->grad.AbsMax(), 0.0F) << p->name;
    }
  }
  double active = 0.0;
  for (Parameter* p : model.StageParams(4)) {
    active += p->grad.AbsMax();
  }
  EXPECT_GT(active, 0.0);
}

TEST(BertChain, SpanModelTrainsOneStep) {
  Rng rng(35);
  BertConfig cfg;
  cfg.vocab = 16;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.ffn_dim = 16;
  cfg.num_layers = 2;
  cfg.max_len = 12;
  auto model = PartitionIntoChain("bert", BuildBertBlocks(cfg, rng),
                                  PartitionConfig{.target_modules = 4});
  Batch batch;
  batch.input = Tensor({2, 10});
  for (int64_t i = 0; i < 20; ++i) {
    batch.input.Data()[i] = static_cast<float>(3 + rng.NextBelow(10));
  }
  batch.spans = {{2, 4}, {5, 6}};
  Tensor out = model->ForwardFrom(0, batch.input);
  ASSERT_EQ(out.Size(2), 2);
  LossResult loss = SpanLoss(out, batch.spans);
  EXPECT_GT(loss.loss, 0.0F);
  model->ZeroGrad();
  model->BackwardTo(0, loss.grad);
}

}  // namespace
}  // namespace egeria
