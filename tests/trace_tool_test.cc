// tools/egeria_trace itself: merge ordering across skewed per-rank clocks,
// the reconcile tolerance math (relative band + 10 ms absolute floor), and
// --diagnose classification/straggler/overlap results on synthetic,
// hand-built trace files where every expected number is known in closed form.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace {

struct ToolRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

ToolRun RunTraceTool(const std::string& args) {
  ToolRun r;
  const std::string cmd = std::string(EGERIA_TRACE_BIN) + " " + args + " 2>&1";
  FILE* p = ::popen(cmd.c_str(), "r");
  if (p == nullptr) {
    return r;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), p)) > 0) {
    r.output.append(buf, n);
  }
  const int rc = ::pclose(p);
  r.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return r;
}

// One complete-event line in the exact one-event-per-line format trace.cc
// emits (ts/dur in microseconds).
std::string SpanLine(int rank, int tid, double ts_us, double dur_us,
                     const char* cat, const char* name) {
  char line[256];
  std::snprintf(line,
                sizeof(line),
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                "\"dur\":%.3f,\"cat\":\"%s\",\"name\":\"%s\"},\n",
                rank, tid, ts_us, dur_us, cat, name);
  return line;
}

void WriteTraceFile(const std::string& path, int rank, double sync_us,
                    const std::vector<std::string>& event_lines) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out)) << path;
  out << "{\"displayTimeUnit\":\"ms\",\n";
  out << "\"otherData\":{\"rank\":" << rank << ",\"clock_sync_us\":" << sync_us
      << ",\"dropped_events\":0,\"process_label\":\"synthetic rank " << rank
      << "\"},\n";
  out << "\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":" << rank
      << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"synthetic\"}},\n";
  for (const std::string& line : event_lines) {
    out << line;
  }
  out << "{\"ph\":\"i\",\"pid\":" << rank
      << ",\"tid\":1,\"ts\":0.000,\"s\":\"t\",\"cat\":\"meta\",\"name\":\"end\"}\n";
  out << "]}\n";
}

std::string TmpPath(const char* name) { return ::testing::TempDir() + name; }

// Reads the first event line of `path` whose pid matches and returns its ts.
double MergedTs(const std::string& path, int pid, const char* name) {
  std::ifstream is(path);
  std::string line;
  const std::string pid_pat = "\"pid\":" + std::to_string(pid);
  const std::string name_pat = std::string("\"name\":\"") + name + "\"";
  while (std::getline(is, line)) {
    if (line.rfind("{\"ph\":\"X\"", 0) == 0 &&
        line.find(pid_pat) != std::string::npos &&
        line.find(name_pat) != std::string::npos) {
      const size_t p = line.find("\"ts\":");
      if (p != std::string::npos) {
        return std::strtod(line.c_str() + p + 5, nullptr);
      }
    }
  }
  return -1.0;
}

// Extracts a numeric field from the EGERIA_DIAGNOSIS json line.
bool DiagnosisField(const std::string& output, const char* key, double* out) {
  const size_t d = output.find("EGERIA_DIAGNOSIS ");
  if (d == std::string::npos) {
    return false;
  }
  const std::string pat = std::string("\"") + key + "\":";
  const size_t p = output.find(pat, d);
  if (p == std::string::npos) {
    return false;
  }
  *out = std::strtod(output.c_str() + p + pat.size(), nullptr);
  return true;
}

TEST(TraceToolTest, MergeAlignsSkewedClocksOnSyncStamps) {
  // Rank 1's steady clock reads 4000µs ahead at the shared sync instant, so
  // its events shift by (sync_0 - sync_1) = -4000; a final global lift keeps
  // every timestamp non-negative. Absolute values therefore depend on the
  // lift — the invariant is the cross-rank delta: 5500 - 500 = 5000µs of raw
  // skew collapses to 1000µs of real offset once the clocks are aligned.
  const std::string r0 = TmpPath("/tt_merge_r0.json");
  const std::string r1 = TmpPath("/tt_merge_r1.json");
  const std::string merged = TmpPath("/tt_merged.json");
  WriteTraceFile(r0, 0, 1000.0,
                 {SpanLine(0, 1, 500.0, 100.0, "trainer", "fp")});
  WriteTraceFile(r1, 1, 5000.0,
                 {SpanLine(1, 1, 5500.0, 100.0, "trainer", "fp")});
  const ToolRun run =
      RunTraceTool("--out=" + merged + " " + r0 + " " + r1);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  const double ts0 = MergedTs(merged, 0, "fp");
  const double ts1 = MergedTs(merged, 1, "fp");
  ASSERT_GE(ts0, 0.0);
  ASSERT_GE(ts1, 0.0);
  EXPECT_DOUBLE_EQ(ts1 - ts0, 1000.0);
}

TEST(TraceToolTest, ReconcileToleranceBandAndAbsoluteFloor) {
  const std::string r0 = TmpPath("/tt_rec_r0.json");
  // Totals: data=0.1s fp=0.3s bp=0.5s train=1.0s; no opt span at all.
  WriteTraceFile(
      r0, 0, 0.0,
      {SpanLine(0, 1, 0.0, 1000000.0, "trainer", "train"),
       SpanLine(0, 1, 0.0, 100000.0, "trainer", "data"),
       SpanLine(0, 1, 100000.0, 300000.0, "trainer", "fp"),
       SpanLine(0, 1, 400000.0, 500000.0, "trainer", "bp")});

  // In tolerance: every phase within 5%, and the missing opt span passes via
  // the 10 ms absolute floor (result says 4 ms, trace says 0).
  const std::string good_log = TmpPath("/tt_rec_good.log");
  {
    std::ofstream log(good_log, std::ios::trunc);
    log << "EGERIA_RESULT rank=0 data_s=0.102 fp_s=0.295 bp_s=0.510 "
           "opt_s=0.004 train_s=1.010\n";
  }
  ToolRun run = RunTraceTool("--reconcile=" + good_log + " " + r0);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("reconcile: all phases within"),
            std::string::npos);

  // Out of tolerance: train_s off by 20% (and far beyond the 10 ms floor).
  const std::string bad_log = TmpPath("/tt_rec_bad.log");
  {
    std::ofstream log(bad_log, std::ios::trunc);
    log << "EGERIA_RESULT rank=0 data_s=0.100 fp_s=0.300 bp_s=0.500 "
           "opt_s=0.000 train_s=1.200\n";
  }
  run = RunTraceTool("--reconcile=" + bad_log + " " + r0);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("MISMATCH"), std::string::npos);

  // A looser band admits the same 20% skew.
  run = RunTraceTool("--tolerance-pct=25 --reconcile=" + bad_log + " " + r0);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(TraceToolTest, DiagnoseNamesStragglerAndCommWaitBound) {
  // Rank 1 carries a 1.85 s unattributed gap (the injected-delay signature:
  // time inside trainer.train covered by no phase span); rank 0 spends 1.6 s
  // in comm_wait waiting for it. Loads: r0 = 1.0 + 0.3, r1 = 1.0 + 1.85 →
  // skew 2.85/1.3 ≈ 2.19 over the default 2.0 threshold.
  const std::string r0 = TmpPath("/tt_diag_r0.json");
  const std::string r1 = TmpPath("/tt_diag_r1.json");
  WriteTraceFile(
      r0, 0, 0.0,
      {SpanLine(0, 1, 0.0, 3000000.0, "trainer", "train"),
       SpanLine(0, 1, 0.0, 100000.0, "trainer", "data"),
       SpanLine(0, 1, 100000.0, 300000.0, "trainer", "fp"),
       SpanLine(0, 1, 400000.0, 500000.0, "trainer", "bp"),
       // Overlap accounting is per round, mirroring the worker: round 1 has
       // 0.95 s of wire transfer against a 0.5 s comm_wait block → hidden
       // max(0, 0.95-0.5) = 0.45 s, exposed 0.5 s. Round 2 has 0.05 s of
       // wire against a 1.1 s block → hidden clipped to 0, exposed 1.1 s.
       // Totals: hidden 0.45 s, exposed 1.6 s, efficiency 0.45/2.05 ≈ 22%.
       SpanLine(0, 2, 450000.0, 950000.0, "comm", "round"),
       SpanLine(0, 2, 450000.0, 950000.0, "ring", "reduce_scatter"),
       SpanLine(0, 1, 900000.0, 500000.0, "trainer", "comm_wait"),
       SpanLine(0, 2, 1400000.0, 1100000.0, "comm", "round"),
       SpanLine(0, 2, 1400000.0, 50000.0, "ring", "all_gather"),
       SpanLine(0, 1, 1400000.0, 1100000.0, "trainer", "comm_wait"),
       // Lifecycle envelopes and comm-thread wrappers must NOT count as
       // wire time — they cover readiness waits, not transfers.
       SpanLine(0, 2, 400000.0, 2100000.0, "comm", "bucket"),
       SpanLine(0, 2, 450000.0, 950000.0, "comm", "reduce_scatter"),
       SpanLine(0, 1, 2500000.0, 200000.0, "trainer", "opt")});
  WriteTraceFile(
      r1, 1, 0.0,
      {SpanLine(1, 1, 0.0, 3000000.0, "trainer", "train"),
       SpanLine(1, 1, 0.0, 100000.0, "trainer", "data"),
       SpanLine(1, 1, 100000.0, 300000.0, "trainer", "fp"),
       SpanLine(1, 1, 400000.0, 500000.0, "trainer", "bp"),
       SpanLine(1, 1, 900000.0, 50000.0, "trainer", "comm_wait"),
       SpanLine(1, 1, 950000.0, 200000.0, "trainer", "opt")});

  const ToolRun run = RunTraceTool("--diagnose " + r0 + " " + r1);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"classification\":\"comm-wait-bound\""),
            std::string::npos)
      << run.output;
  double v = 0.0;
  ASSERT_TRUE(DiagnosisField(run.output, "straggler_rank", &v)) << run.output;
  EXPECT_EQ(static_cast<int>(v), 1);
  ASSERT_TRUE(DiagnosisField(run.output, "straggler_skew", &v));
  EXPECT_NEAR(v, 2.85 / 1.3, 0.01);
  ASSERT_TRUE(DiagnosisField(run.output, "overlap_efficiency_pct", &v));
  EXPECT_NEAR(v, 100.0 * 0.45 / 2.05, 0.1);
  ASSERT_TRUE(DiagnosisField(run.output, "comm_hidden_s", &v));
  EXPECT_NEAR(v, 0.45, 0.001);
  ASSERT_TRUE(DiagnosisField(run.output, "comm_exposed_s", &v));
  EXPECT_NEAR(v, 1.6, 0.001);

  // A raised threshold silences the straggler verdict but keeps the class.
  const ToolRun strict =
      RunTraceTool("--diagnose --straggler-skew=5 " + r0 + " " + r1);
  ASSERT_EQ(strict.exit_code, 0) << strict.output;
  ASSERT_TRUE(DiagnosisField(strict.output, "straggler_rank", &v));
  EXPECT_EQ(static_cast<int>(v), -1);
  EXPECT_NE(strict.output.find("straggler: none"), std::string::npos);
}

TEST(TraceToolTest, DiagnoseClassifiesComputeBoundBalancedRun) {
  // Both ranks identical and compute-heavy: no straggler, compute-bound.
  const std::vector<std::string> events = {
      SpanLine(0, 1, 0.0, 2900000.0, "trainer", "train"),
      SpanLine(0, 1, 0.0, 100000.0, "trainer", "data"),
      SpanLine(0, 1, 100000.0, 1000000.0, "trainer", "fp"),
      SpanLine(0, 1, 1100000.0, 1000000.0, "trainer", "bp"),
      SpanLine(0, 1, 2100000.0, 200000.0, "trainer", "comm_wait"),
      // No comm.round envelopes → the sync-path fallback applies: wire spans
      // interval-intersected with backward spans. This star_reduce sits
      // entirely inside comm_wait, so all 0.2 s of it is exposed.
      SpanLine(0, 1, 2100000.0, 200000.0, "ring", "star_reduce"),
      SpanLine(0, 1, 2300000.0, 500000.0, "trainer", "opt")};
  const std::string r0 = TmpPath("/tt_cb_r0.json");
  const std::string r1 = TmpPath("/tt_cb_r1.json");
  WriteTraceFile(r0, 0, 0.0, events);
  WriteTraceFile(r1, 1, 0.0, events);  // rank inside lines is cosmetic

  const ToolRun run = RunTraceTool("--diagnose " + r0 + " " + r1);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"classification\":\"compute-bound\""),
            std::string::npos)
      << run.output;
  double v = 0.0;
  ASSERT_TRUE(DiagnosisField(run.output, "straggler_rank", &v));
  EXPECT_EQ(static_cast<int>(v), -1);
  ASSERT_TRUE(DiagnosisField(run.output, "critical_path_s", &v));
  // data 0.1 + compute 2.5 + comm_wait 0.2 + gap 0.1 = 2.9 (== train).
  EXPECT_NEAR(v, 2.9, 0.01);
  ASSERT_TRUE(DiagnosisField(run.output, "overlap_efficiency_pct", &v));
  EXPECT_NEAR(v, 0.0, 0.01);
  ASSERT_TRUE(DiagnosisField(run.output, "comm_exposed_s", &v));
  EXPECT_NEAR(v, 0.4, 0.001);  // 0.2 s per rank, both exposed
}

}  // namespace
