// Tensor and kernel correctness: matmul family vs naive reference, im2col/col2im
// adjointness, softmax properties, pooling shapes, upsample adjointness.
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.Size(0);
  const int64_t k = a.Size(1);
  const int64_t n = b.Size(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<double>(a.At(i, p)) * b.At(p, j);
      }
      c.At(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

void ExpectNear(const Tensor& a, const Tensor& b, float tol) {
  ASSERT_EQ(a.NumEl(), b.NumEl());
  for (int64_t i = 0; i < a.NumEl(); ++i) {
    EXPECT_NEAR(a.Data()[i], b.Data()[i], tol) << "at " << i;
  }
}

struct MatShape {
  int64_t m, k, n;
};

class MatMulTest : public ::testing::TestWithParam<MatShape> {};

TEST_P(MatMulTest, AgreesWithNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  ExpectNear(MatMul(a, b), NaiveMatMul(a, b), 1e-4F);
  // TransA: (A^T)^T B where we feed A^T.
  Tensor at = Transpose2d(a);
  ExpectNear(MatMulTransA(at, b), NaiveMatMul(a, b), 1e-4F);
  Tensor bt = Transpose2d(b);
  ExpectNear(MatMulTransB(a, bt), NaiveMatMul(a, b), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulTest,
                         ::testing::Values(MatShape{1, 1, 1}, MatShape{3, 4, 5},
                                           MatShape{8, 8, 8}, MatShape{5, 17, 3},
                                           MatShape{16, 2, 16}, MatShape{2, 32, 2}));

TEST(TensorOps, BatchedMatMulMatchesPerSlice) {
  Rng rng(7);
  Tensor a = Tensor::Randn({3, 4, 5}, rng);
  Tensor b = Tensor::Randn({3, 5, 6}, rng);
  Tensor c = BatchedMatMul(a, b);
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor as({4, 5});
    Tensor bs({5, 6});
    std::copy(a.Data() + bi * 20, a.Data() + (bi + 1) * 20, as.Data());
    std::copy(b.Data() + bi * 30, b.Data() + (bi + 1) * 30, bs.Data());
    Tensor cs = NaiveMatMul(as, bs);
    for (int64_t i = 0; i < 24; ++i) {
      EXPECT_NEAR(c.Data()[bi * 24 + i], cs.Data()[i], 1e-4F);
    }
  }
}

TEST(TensorOps, BatchedMatMulTransBMatchesComposition) {
  Rng rng(8);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor b = Tensor::Randn({2, 5, 4}, rng);
  Tensor c1 = BatchedMatMul(a, b, /*trans_b=*/true);
  // Compose via explicit transpose.
  Tensor bt({2, 4, 5});
  for (int64_t bi = 0; bi < 2; ++bi) {
    for (int64_t i = 0; i < 5; ++i) {
      for (int64_t j = 0; j < 4; ++j) {
        bt.At(bi, j, i) = b.At(bi, i, j);
      }
    }
  }
  Tensor c2 = BatchedMatMul(a, bt);
  ExpectNear(c1, c2, 1e-4F);
}

// <Im2Col(x), y> == <x, Col2Im(y)> — the adjoint identity that makes conv backward
// correct by construction.
struct GeomCase {
  int64_t k, stride, pad, dil;
};

class Im2ColAdjointTest : public ::testing::TestWithParam<GeomCase> {};

TEST_P(Im2ColAdjointTest, AdjointIdentity) {
  const auto g = GetParam();
  ConvGeom geom{g.k, g.k, g.stride, g.pad, g.dil};
  Rng rng(11);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  Tensor cols = Im2Col(x, geom);
  Tensor y = Tensor::Randn(cols.Shape(), rng);
  const double lhs = cols.Dot(y);
  Tensor back = Col2Im(y, geom, 3, 8, 8);
  const double rhs = x.Dot(back);
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(Geometries, Im2ColAdjointTest,
                         ::testing::Values(GeomCase{3, 1, 1, 1}, GeomCase{3, 2, 1, 1},
                                           GeomCase{1, 1, 0, 1}, GeomCase{3, 1, 2, 2},
                                           GeomCase{5, 2, 2, 1}));

TEST(TensorOps, SoftmaxRowsSumToOne) {
  Rng rng(13);
  Tensor x = Tensor::Randn({4, 7}, rng, 3.0F);
  Tensor s = Softmax(x);
  for (int64_t r = 0; r < 4; ++r) {
    double sum = 0;
    for (int64_t j = 0; j < 7; ++j) {
      const float v = s.At(r, j);
      EXPECT_GE(v, 0.0F);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(TensorOps, SoftmaxInvariantToShift) {
  Rng rng(14);
  Tensor x = Tensor::Randn({2, 5}, rng);
  Tensor y = x.Clone();
  y.AddScalar_(100.0F);
  ExpectNear(Softmax(x), Softmax(y), 1e-5F);
}

TEST(TensorOps, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(15);
  Tensor x = Tensor::Randn({3, 6}, rng, 2.0F);
  Tensor ls = LogSoftmax(x);
  Tensor s = Softmax(x);
  for (int64_t i = 0; i < x.NumEl(); ++i) {
    EXPECT_NEAR(ls.Data()[i], std::log(s.Data()[i]), 1e-4F);
  }
}

TEST(TensorOps, UpsampleAdjoint) {
  Rng rng(16);
  Tensor x = Tensor::Randn({1, 2, 4, 4}, rng);
  Tensor up = BilinearUpsampleForward(x, 8, 8);
  Tensor g = Tensor::Randn(up.Shape(), rng);
  const double lhs = up.Dot(g);
  Tensor back = BilinearUpsampleBackward(g, 4, 4);
  const double rhs = x.Dot(back);
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));
}

TEST(TensorOps, ConcatSplitRoundTrip) {
  Rng rng(17);
  Tensor a = Tensor::Randn({2, 3, 4, 4}, rng);
  Tensor b = Tensor::Randn({2, 5, 4, 4}, rng);
  Tensor cat = ConcatChannels({a, b});
  EXPECT_EQ(cat.Size(1), 8);
  auto parts = SplitChannels(cat, {3, 5});
  ExpectNear(parts[0], a, 0.0F);
  ExpectNear(parts[1], b, 0.0F);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t = Tensor::Ones({2, 6});
  Tensor r = t.Reshape({3, 4});
  r.At(0, 0) = 5.0F;
  EXPECT_FLOAT_EQ(t.At(0, 0), 5.0F);
  Tensor inferred = t.Reshape({4, -1});
  EXPECT_EQ(inferred.Size(1), 3);
}

TEST(Tensor, MakeUniqueDetaches) {
  Tensor t = Tensor::Ones({4});
  Tensor alias = t;
  alias.MakeUnique();
  alias.At(0) = 2.0F;
  EXPECT_FLOAT_EQ(t.At(0), 1.0F);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::FromVector({4}, {1.0F, -3.0F, 2.0F, 0.5F});
  EXPECT_FLOAT_EQ(t.Sum(), 0.5F);
  EXPECT_FLOAT_EQ(t.AbsMax(), 3.0F);
  EXPECT_FLOAT_EQ(t.Min(), -3.0F);
  EXPECT_FLOAT_EQ(t.Max(), 2.0F);
  EXPECT_NEAR(t.L2Norm(), std::sqrt(1 + 9 + 4 + 0.25), 1e-5);
}

TEST(Tensor, HasNonFinite) {
  Tensor t = Tensor::Ones({3});
  EXPECT_FALSE(t.HasNonFinite());
  t.At(1) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(t.HasNonFinite());
}

}  // namespace
}  // namespace egeria
