// Algorithm 1 unit tests: stationarity detection, per-module tolerance, unfreeze on
// LR drop with window halving, protected tail, cyclical-schedule hook.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/freezing_policy.h"

namespace egeria {
namespace {

EgeriaConfig SmallConfig() {
  EgeriaConfig cfg;
  cfg.window_w = 4;
  cfg.tolerance_coef = 0.2;
  cfg.protected_tail = 1;
  return cfg;
}

// Feeds a plasticity series; returns the iteration at which the stage froze, or -1.
int64_t FeedSeries(FreezingPolicy& policy, int stage, const std::vector<double>& series,
                   float lr = 0.1F) {
  int64_t iter = 0;
  for (double v : series) {
    iter += 10;
    auto d = policy.OnPlasticity(stage, v, lr, iter);
    if (d && d->kind == FreezeDecision::Kind::kFreezeUpTo) {
      return iter;
    }
  }
  return -1;
}

TEST(FreezingPolicy, FreezesAfterDecreaseThenPlateau) {
  FreezingPolicy policy(SmallConfig(), /*num_stages=*/4, /*annealing=*/true);
  std::vector<double> series;
  for (int i = 0; i < 8; ++i) {
    series.push_back(1.0 - 0.1 * i);  // Decreasing: slope well above tolerance.
  }
  for (int i = 0; i < 20; ++i) {
    series.push_back(0.2);  // Plateau.
  }
  const int64_t frozen_at = FeedSeries(policy, 0, series);
  EXPECT_GT(frozen_at, 0);
  EXPECT_EQ(policy.frontier(), 1);
}

TEST(FreezingPolicy, DoesNotFreezeWhileSteadilyDecreasing) {
  FreezingPolicy policy(SmallConfig(), 4, true);
  std::vector<double> series;
  for (int i = 0; i < 40; ++i) {
    series.push_back(10.0 - 0.2 * i);  // Constant slope, never stationary.
  }
  EXPECT_EQ(FeedSeries(policy, 0, series), -1);
  EXPECT_EQ(policy.frontier(), 0);
}

TEST(FreezingPolicy, NoisyPlateauStillFreezes) {
  // The moving average + linear fit must absorb SGD-style noise.
  FreezingPolicy policy(SmallConfig(), 4, true);
  std::vector<double> series;
  for (int i = 0; i < 6; ++i) {
    series.push_back(2.0 - 0.3 * i);
  }
  for (int i = 0; i < 30; ++i) {
    series.push_back(0.2 + 0.01 * ((i % 2 == 0) ? 1 : -1));
  }
  EXPECT_GT(FeedSeries(policy, 0, series), 0);
}

TEST(FreezingPolicy, IgnoresStaleStageEvaluations) {
  FreezingPolicy policy(SmallConfig(), 4, true);
  // Evaluations for a non-frontier stage are dropped (late async deliveries).
  EXPECT_FALSE(policy.OnPlasticity(2, 1.0, 0.1F, 10).has_value());
  EXPECT_EQ(policy.frontier(), 0);
}

TEST(FreezingPolicy, ToleranceIsPerModule) {
  FreezingPolicy policy(SmallConfig(), 4, true);
  std::vector<double> steep;
  for (int i = 0; i < 10; ++i) {
    steep.push_back(100.0 - 10.0 * i);
  }
  for (int i = 0; i < 20; ++i) {
    steep.push_back(0.0);
  }
  FeedSeries(policy, 0, steep);
  ASSERT_EQ(policy.frontier(), 1);
  // Stage 0's tolerance derives from slopes of magnitude ~10 x 0.2 = 2.
  EXPECT_GT(policy.ToleranceOf(0), 0.1);
  // Stage 1 (fresh) has no tolerance yet.
  EXPECT_LT(policy.ToleranceOf(1), 0.0);
}

TEST(FreezingPolicy, SequentialModulesFreezeInOrder) {
  FreezingPolicy policy(SmallConfig(), 5, true);
  std::vector<double> plateau_after_drop;
  for (int i = 0; i < 5; ++i) {
    plateau_after_drop.push_back(1.0 - 0.15 * i);
  }
  for (int i = 0; i < 15; ++i) {
    plateau_after_drop.push_back(0.25);
  }
  EXPECT_GT(FeedSeries(policy, 0, plateau_after_drop), 0);
  EXPECT_EQ(policy.frontier(), 1);
  EXPECT_GT(FeedSeries(policy, 1, plateau_after_drop), 0);
  EXPECT_EQ(policy.frontier(), 2);
  EXPECT_GT(FeedSeries(policy, 2, plateau_after_drop), 0);
  EXPECT_EQ(policy.frontier(), 3);
  // Stage 3 is the max freezable (protected_tail=1 of 5 stages -> max index 3).
  EXPECT_EQ(policy.MaxFreezable(), 3);
}

TEST(FreezingPolicy, ProtectedTailNeverFreezes) {
  EgeriaConfig cfg = SmallConfig();
  cfg.protected_tail = 2;
  FreezingPolicy policy(cfg, 3, true);
  // MaxFreezable = 3 - 1 - 2 = 0: only stage 0 may freeze.
  EXPECT_EQ(policy.MaxFreezable(), 0);
  std::vector<double> plateau(30, 0.1);
  FeedSeries(policy, 0, plateau);
  EXPECT_EQ(policy.frontier(), 1);
  // Frontier is now beyond MaxFreezable: further evaluations are inert.
  EXPECT_FALSE(policy.OnPlasticity(1, 0.1, 0.1F, 999).has_value());
  EXPECT_EQ(policy.frontier(), 1);
}

TEST(FreezingPolicy, UnfreezesOnTenXLrDropAndHalvesWindow) {
  FreezingPolicy policy(SmallConfig(), 4, /*annealing=*/true);
  std::vector<double> plateau(30, 0.5);
  FeedSeries(policy, 0, plateau, /*lr=*/0.1F);
  ASSERT_EQ(policy.frontier(), 1);
  const int window_before = policy.window();

  // LR drops by 2x: no unfreeze.
  EXPECT_FALSE(policy.OnLr(0.05F, 400).has_value());
  // LR drops to 10%: unfreeze all, window halves.
  auto d = policy.OnLr(0.01F, 500);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, FreezeDecision::Kind::kUnfreezeAll);
  EXPECT_EQ(policy.frontier(), 0);
  EXPECT_EQ(policy.window(), std::max(2, window_before / 2));
}

TEST(FreezingPolicy, RefreezeIsFasterAfterUnfreeze) {
  FreezingPolicy policy(SmallConfig(), 4, true);
  std::vector<double> plateau(40, 0.5);
  const int64_t first = FeedSeries(policy, 0, plateau, 0.1F);
  ASSERT_GT(first, 0);
  policy.OnLr(0.005F, 1000);  // unfreeze; window halves 4 -> 2
  ASSERT_EQ(policy.frontier(), 0);
  const int64_t second = FeedSeries(policy, 0, plateau, 0.005F);
  ASSERT_GT(second, 0);
  // Relaxed criteria: fewer evaluations needed the second time.
  EXPECT_LT(second, first);
}

TEST(FreezingPolicy, NoUnfreezeWithoutPriorFreeze) {
  FreezingPolicy policy(SmallConfig(), 4, true);
  EXPECT_FALSE(policy.OnLr(1e-9F, 10).has_value());
}

TEST(FreezingPolicy, CyclicalHookDrivesUnfreeze) {
  FreezingPolicy policy(SmallConfig(), 4, /*annealing=*/false);
  std::vector<double> plateau(30, 0.5);
  FeedSeries(policy, 0, plateau);
  ASSERT_EQ(policy.frontier(), 1);
  // Without a hook, non-annealing schedules never unfreeze.
  EXPECT_FALSE(policy.OnLr(1e-9F, 100).has_value());
  policy.SetCyclicalHook([](float lr, int64_t) { return lr > 0.5F; });
  EXPECT_FALSE(policy.OnLr(0.1F, 200).has_value());
  auto d = policy.OnLr(0.9F, 300);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(policy.frontier(), 0);
}

TEST(FreezingPolicy, FlatFromStartUsesToleranceFloor) {
  // A module whose plasticity is flat from the first reading must still freeze
  // (tolerance floor), not dead-lock on a zero tolerance.
  FreezingPolicy policy(SmallConfig(), 4, true);
  std::vector<double> flat(30, 0.42);
  EXPECT_GT(FeedSeries(policy, 0, flat), 0);
}

}  // namespace
}  // namespace egeria
