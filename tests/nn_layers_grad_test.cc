// Gradient checks for every trainable layer: analytic Backward vs central
// finite differences. These are the core correctness tests for the NN substrate.
#include <gtest/gtest.h>

#include <memory>

#include "src/nn/activations.h"
#include "src/nn/batchnorm.h"
#include "src/nn/blocks.h"
#include "src/nn/conv2d.h"
#include "src/nn/layernorm.h"
#include "src/nn/linear.h"
#include "src/nn/pooling.h"
#include "src/nn/sequential.h"
#include "src/nn/transformer_layers.h"
#include "src/util/rng.h"
#include "tests/grad_check.h"

namespace egeria {
namespace {

using testing::CheckModuleGradients;

// Simple layers: tight max tolerance. Deep composites with BatchNorm are strongly
// curved, so finite differences carry O(eps^2 * |H|) truncation error; for those we
// bound the mean error tightly and the max loosely (isolated near-kink entries).
constexpr double kTol = 5e-2;
constexpr double kMeanTol = 2.5e-2;
constexpr double kMaxTolComposite = 0.5;

TEST(GradCheck, Linear2d) {
  Rng rng(1);
  Linear layer("fc", 6, 4, rng);
  auto res = CheckModuleGradients(layer, Tensor::Randn({3, 6}, rng), 11);
  EXPECT_LT(res.max_rel_error, kTol);
  EXPECT_GT(res.checked, 10);
}

TEST(GradCheck, Linear3d) {
  Rng rng(2);
  Linear layer("fc", 5, 7, rng);
  auto res = CheckModuleGradients(layer, Tensor::Randn({2, 3, 5}, rng), 12);
  EXPECT_LT(res.max_rel_error, kTol);
}

TEST(GradCheck, LinearNoBias) {
  Rng rng(3);
  Linear layer("fc", 4, 4, rng, /*bias=*/false);
  auto res = CheckModuleGradients(layer, Tensor::Randn({2, 4}, rng), 13);
  EXPECT_LT(res.max_rel_error, kTol);
}

struct ConvCase {
  int64_t in_c;
  int64_t out_c;
  int64_t kernel;
  int64_t stride;
  int64_t pad;
  int64_t dilation;
};

class ConvGradTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradTest, MatchesNumeric) {
  const ConvCase c = GetParam();
  Rng rng(7);
  Conv2d layer("conv", c.in_c, c.out_c, c.kernel, rng, c.stride, c.pad, c.dilation,
               /*bias=*/true);
  auto res = CheckModuleGradients(layer, Tensor::Randn({2, c.in_c, 8, 8}, rng), 21);
  EXPECT_LT(res.max_rel_error, kTol) << "conv case failed";
}

INSTANTIATE_TEST_SUITE_P(ConvGeometries, ConvGradTest,
                         ::testing::Values(ConvCase{3, 4, 3, 1, 1, 1},
                                           ConvCase{2, 5, 3, 2, 1, 1},
                                           ConvCase{4, 4, 1, 1, 0, 1},
                                           ConvCase{3, 2, 3, 1, 2, 2},
                                           ConvCase{2, 3, 5, 1, 2, 1},
                                           ConvCase{1, 6, 3, 2, 0, 1}));

TEST(GradCheck, DepthwiseConv) {
  Rng rng(8);
  DepthwiseConv2d layer("dw", 4, 3, rng, /*stride=*/1);
  auto res = CheckModuleGradients(layer, Tensor::Randn({2, 4, 6, 6}, rng), 22);
  EXPECT_LT(res.max_rel_error, kTol);
}

TEST(GradCheck, DepthwiseConvStride2) {
  Rng rng(9);
  DepthwiseConv2d layer("dw", 3, 3, rng, /*stride=*/2);
  auto res = CheckModuleGradients(layer, Tensor::Randn({2, 3, 8, 8}, rng), 23);
  EXPECT_LT(res.max_rel_error, kTol);
}

TEST(GradCheck, BatchNormTraining) {
  Rng rng(10);
  BatchNorm2d layer("bn", 3);
  auto res = CheckModuleGradients(layer, Tensor::Randn({4, 3, 5, 5}, rng), 24);
  EXPECT_LT(res.max_rel_error, kTol);
}

TEST(GradCheck, BatchNormFrozenUsesRunningStats) {
  Rng rng(11);
  BatchNorm2d layer("bn", 3);
  // Populate running stats with a few training batches first.
  for (int i = 0; i < 5; ++i) {
    layer.Forward(Tensor::Randn({4, 3, 5, 5}, rng));
  }
  layer.SetFrozen(true);
  auto res = CheckModuleGradients(layer, Tensor::Randn({4, 3, 5, 5}, rng), 25);
  EXPECT_LT(res.max_rel_error, kTol);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(12);
  LayerNorm layer("ln", 8);
  auto res = CheckModuleGradients(layer, Tensor::Randn({3, 4, 8}, rng), 26);
  EXPECT_LT(res.max_rel_error, kTol);
}

TEST(GradCheck, ReLUGeLUSigmoidTanh) {
  Rng rng(13);
  {
    ReLU layer("relu");
    auto res = CheckModuleGradients(layer, Tensor::Randn({3, 10}, rng), 27);
    EXPECT_LT(res.max_rel_error, kTol);
  }
  {
    GeLU layer("gelu");
    auto res = CheckModuleGradients(layer, Tensor::Randn({3, 10}, rng), 28);
    EXPECT_LT(res.max_rel_error, kTol);
  }
  {
    Sigmoid layer("sig");
    auto res = CheckModuleGradients(layer, Tensor::Randn({3, 10}, rng), 29);
    EXPECT_LT(res.max_rel_error, kTol);
  }
  {
    Tanh layer("tanh");
    auto res = CheckModuleGradients(layer, Tensor::Randn({3, 10}, rng), 30);
    EXPECT_LT(res.max_rel_error, kTol);
  }
}

TEST(GradCheck, ReLU6) {
  Rng rng(14);
  ReLU6 layer("relu6");
  Tensor x = Tensor::Randn({3, 10}, rng, 3.0F);  // Spread across both clamps.
  auto res = CheckModuleGradients(layer, x, 31);
  EXPECT_LT(res.max_rel_error, kTol);
}

TEST(GradCheck, Pooling) {
  Rng rng(15);
  {
    MaxPool2d layer("mp", 2, 2);
    auto res = CheckModuleGradients(layer, Tensor::Randn({2, 3, 6, 6}, rng), 32);
    EXPECT_LT(res.max_rel_error, kTol);
  }
  {
    AvgPool2d layer("ap", 2, 2);
    auto res = CheckModuleGradients(layer, Tensor::Randn({2, 3, 6, 6}, rng), 33);
    EXPECT_LT(res.max_rel_error, kTol);
  }
  {
    GlobalAvgPool layer("gap");
    auto res = CheckModuleGradients(layer, Tensor::Randn({2, 3, 4, 4}, rng), 34);
    EXPECT_LT(res.max_rel_error, kTol);
  }
  {
    Upsample layer("up", 8, 8);
    auto res = CheckModuleGradients(layer, Tensor::Randn({2, 2, 4, 4}, rng), 35);
    EXPECT_LT(res.max_rel_error, kTol);
  }
}

TEST(GradCheck, BasicResidualBlockIdentity) {
  Rng rng(16);
  BasicResidualBlock block("rb", 4, 4, 1, rng);
  auto res = CheckModuleGradients(block, Tensor::Randn({2, 4, 6, 6}, rng), 36, 3e-3, 6);
  EXPECT_LT(res.mean_rel_error, kMeanTol);
  EXPECT_LT(res.max_rel_error, kMaxTolComposite);
}

TEST(GradCheck, BasicResidualBlockDownsample) {
  Rng rng(17);
  BasicResidualBlock block("rb", 3, 6, 2, rng);
  auto res = CheckModuleGradients(block, Tensor::Randn({2, 3, 8, 8}, rng), 37, 3e-3, 6);
  EXPECT_LT(res.mean_rel_error, kMeanTol);
  EXPECT_LT(res.max_rel_error, kMaxTolComposite);
}

TEST(GradCheck, BottleneckBlock) {
  Rng rng(18);
  BottleneckBlock block("bt", 4, 8, 2, rng);
  auto res = CheckModuleGradients(block, Tensor::Randn({2, 4, 8, 8}, rng), 38, 3e-3, 6);
  EXPECT_LT(res.mean_rel_error, kMeanTol);
  EXPECT_LT(res.max_rel_error, kMaxTolComposite);
}

TEST(GradCheck, InvertedResidualWithSkip) {
  Rng rng(19);
  InvertedResidual block("ir", 4, 4, 1, 2, rng);
  auto res = CheckModuleGradients(block, Tensor::Randn({2, 4, 6, 6}, rng), 39, 3e-3, 6);
  EXPECT_LT(res.mean_rel_error, kMeanTol);
  EXPECT_LT(res.max_rel_error, kMaxTolComposite);
}

TEST(GradCheck, InvertedResidualStride2NoSkip) {
  Rng rng(20);
  InvertedResidual block("ir", 3, 5, 2, 3, rng);
  auto res = CheckModuleGradients(block, Tensor::Randn({2, 3, 8, 8}, rng), 40, 3e-3, 6);
  EXPECT_LT(res.mean_rel_error, 0.06);
  // The expand conv sits between two per-channel normalizations (expand_bn, then a
  // depthwise conv and dw_bn), which makes the chain nearly scale-invariant in each
  // hidden channel: its true weight gradients are tiny, and the numeric side is
  // float32 cancellation noise. The input gradient through the same chain is exact
  // (checked above via mean error), so only a loose per-entry bound is meaningful.
  EXPECT_LT(res.max_rel_error, 1.5);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(21);
  Sequential seq("seq");
  seq.Add(std::make_unique<Linear>("fc1", 6, 8, rng));
  seq.Add(std::make_unique<ReLU>("r"));
  seq.Add(std::make_unique<Linear>("fc2", 8, 3, rng));
  auto res = CheckModuleGradients(seq, Tensor::Randn({4, 6}, rng), 41);
  EXPECT_LT(res.max_rel_error, kTol);
}

TEST(GradCheck, TransformerEncoderLayer) {
  Rng rng(22);
  TransformerEncoderLayer layer("enc", 8, 2, 16, rng);
  auto res = CheckModuleGradients(layer, Tensor::Randn({2, 4, 8}, rng), 42, 3e-3, 4);
  EXPECT_LT(res.mean_rel_error, kMeanTol);
  EXPECT_LT(res.max_rel_error, kMaxTolComposite);
}

}  // namespace
}  // namespace egeria
