// Build smoke test: verifies the library links and basic tensor plumbing works.
#include <gtest/gtest.h>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

TEST(Smoke, TensorRoundTrip) {
  Rng rng(7);
  Tensor t = Tensor::Randn({2, 3}, rng);
  EXPECT_EQ(t.NumEl(), 6);
  Tensor u = t.Clone();
  u.Scale_(2.0F);
  EXPECT_FLOAT_EQ(u.At(0, 0), 2.0F * t.At(0, 0));
}

}  // namespace
}  // namespace egeria
