// Quantization correctness: round-trip error bounds, int8/fp16 kernels vs float
// layers, observer calibration, and reference-model clone fidelity (the property
// Table 2 depends on: an int8 reference stays semantically close to the model).
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "src/models/chain_model.h"
#include "src/models/resnet.h"
#include "src/core/module_partitioner.h"
#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/quant/quantize.h"
#include "src/quant/quantized_modules.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

TEST(Quantize, WeightRoundTripErrorBounded) {
  Rng rng(1);
  Tensor w = Tensor::Randn({8, 32}, rng);
  QuantizedWeights q = QuantizeWeightsPerChannel(w);
  for (int64_t r = 0; r < 8; ++r) {
    float row_max = 0.0F;
    for (int64_t c = 0; c < 32; ++c) {
      row_max = std::max(row_max, std::abs(w.At(r, c)));
    }
    for (int64_t c = 0; c < 32; ++c) {
      const float deq = static_cast<float>(q.data[static_cast<size_t>(r * 32 + c)]) *
                        q.scales[static_cast<size_t>(r)];
      // Symmetric int8: error <= scale/2 = row_max / 254.
      EXPECT_LE(std::abs(deq - w.At(r, c)), row_max / 254.0F + 1e-6F);
    }
  }
}

TEST(Quantize, ActivationScaleAndClamp) {
  std::vector<float> x{-10.0F, 5.0F, 0.0F, 2.5F};
  const float scale = ActivationScale(x.data(), 4);
  EXPECT_NEAR(scale, 10.0F / 127.0F, 1e-6F);
  std::vector<int8_t> q(4);
  QuantizeActivations(x.data(), q.data(), 4, scale);
  EXPECT_EQ(q[0], -127);
  EXPECT_NEAR(static_cast<float>(q[1]) * scale, 5.0F, scale);
}

TEST(Quantize, ObserverTracksMax) {
  MinMaxObserver obs;
  std::vector<float> a{1.0F, -2.0F};
  std::vector<float> b{0.5F, 7.0F};
  obs.Observe(a.data(), 2);
  obs.Observe(b.data(), 2);
  EXPECT_NEAR(obs.Scale(), 7.0F / 127.0F, 1e-6F);
}

TEST(QuantLinear, MatchesFloatWithinTolerance) {
  Rng rng(2);
  Linear fp("fc", 16, 8, rng);
  QuantLinear q(fp, QuantMode::kDynamic);
  Tensor x = Tensor::Randn({4, 16}, rng);
  fp.SetTraining(false);
  Tensor yf = fp.Forward(x);
  Tensor yq = q.Forward(x);
  const float range = yf.AbsMax();
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    EXPECT_NEAR(yq.Data()[i], yf.Data()[i], 0.05F * range + 1e-3F) << i;
  }
}

TEST(QuantConv2d, MatchesFloatWithinTolerance) {
  Rng rng(3);
  Conv2d fp("conv", 3, 6, 3, rng, 1, 1, 1, /*bias=*/true);
  QuantConv2d q(fp, QuantMode::kStatic);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  fp.SetTraining(false);
  Tensor yf = fp.Forward(x);
  Tensor yq = q.Forward(x);  // First forward self-calibrates the observer.
  const float range = yf.AbsMax();
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    EXPECT_NEAR(yq.Data()[i], yf.Data()[i], 0.05F * range + 1e-3F);
  }
}

TEST(QuantConv2d, StaticScaleFreezesAfterCalibration) {
  Rng rng(4);
  Conv2d fp("conv", 2, 2, 3, rng);
  QuantConv2d q(fp, QuantMode::kStatic);
  Tensor big = Tensor::Randn({1, 2, 6, 6}, rng, 5.0F);
  Tensor small = Tensor::Randn({1, 2, 6, 6}, rng, 0.01F);
  q.Forward(big);
  q.Forward(big);  // kStaticCalibrationBatches = 2: observer now frozen.
  // A tiny input after calibration uses the frozen (large) scale: its quantized
  // representation collapses toward zero instead of rescaling per batch.
  Tensor y_static = q.Forward(small);
  QuantConv2d q_dyn(fp, QuantMode::kDynamic);
  Tensor y_dyn = q_dyn.Forward(small);
  EXPECT_LT(y_static.AbsMax(), y_dyn.AbsMax() + 1e-6F);
}

TEST(Fp16Linear, MatchesFloatClosely) {
  Rng rng(5);
  Linear fp("fc", 12, 6, rng);
  Fp16Linear h(fp);
  Tensor x = Tensor::Randn({3, 12}, rng);
  fp.SetTraining(false);
  Tensor yf = fp.Forward(x);
  Tensor yh = h.Forward(x);
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    EXPECT_NEAR(yh.Data()[i], yf.Data()[i], 0.01F * std::max(1.0F, yf.AbsMax()));
  }
}

TEST(Fp16Conv2d, MatchesFloatClosely) {
  Rng rng(6);
  Conv2d fp("conv", 2, 4, 3, rng);
  Fp16Conv2d h(fp);
  Tensor x = Tensor::Randn({2, 2, 6, 6}, rng);
  fp.SetTraining(false);
  Tensor yf = fp.Forward(x);
  Tensor yh = h.Forward(x);
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    EXPECT_NEAR(yh.Data()[i], yf.Data()[i], 0.02F * std::max(1.0F, yf.AbsMax()));
  }
}

TEST(Factories, PrecisionDispatch) {
  EXPECT_EQ(MakeInferenceFactory(Precision::kInt8, QuantMode::kStatic)->precision(),
            Precision::kInt8);
  EXPECT_EQ(MakeInferenceFactory(Precision::kFloat16, QuantMode::kStatic)->precision(),
            Precision::kFloat16);
  EXPECT_EQ(MakeInferenceFactory(Precision::kFloat32, QuantMode::kStatic)->precision(),
            Precision::kFloat32);
}

// A quantized ResNet reference stays close to the float model at every stage
// boundary — this is what makes int8 plasticity evaluation sound.
TEST(ReferenceClone, Int8ChainTracksFloatChain) {
  Rng rng(7);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 1;
  mcfg.base_width = 8;
  auto model = PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng),
                                  PartitionConfig{.target_modules = 4});
  model->SetTraining(false);

  Int8Factory factory(QuantMode::kStatic);
  auto ref = model->CloneForInference(factory);

  Tensor x = Tensor::Randn({4, 3, 16, 16}, rng);
  Tensor yf = model->ForwardFrom(0, x);
  ref->ForwardFrom(0, x);  // calibration pass
  Tensor yq = ref->ForwardFrom(0, x);
  ASSERT_TRUE(yq.SameShape(yf));
  double err = 0.0;
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    err += std::abs(static_cast<double>(yq.Data()[i]) - yf.Data()[i]);
  }
  err /= static_cast<double>(yf.NumEl());
  EXPECT_LT(err, 0.15 * std::max<double>(1.0, yf.AbsMax()));
}

TEST(ReferenceClone, QuantizedModulesRefuseBackward) {
  Rng rng(8);
  Linear fp("fc", 4, 4, rng);
  QuantLinear q(fp, QuantMode::kDynamic);
  Tensor x = Tensor::Randn({2, 4}, rng);
  q.Forward(x);
  EXPECT_DEATH(q.Backward(x), "inference-only");
}

// ---- Round-trip / saturation property tests ----

TEST(QuantizeProperty, PerChannelScaleSelection) {
  // scale[r] = rowmax/127 for non-degenerate rows, 1.0 for all-zero rows, and
  // the row maximum itself always round-trips to the full code +-127.
  Rng rng(40);
  Tensor w = Tensor::Randn({6, 64}, rng, 3.0F);
  for (int64_t c = 0; c < 64; ++c) {
    w.Data()[2 * 64 + c] = 0.0F;  // Degenerate all-zero channel.
  }
  QuantizedWeights q = QuantizeWeightsPerChannel(w);
  for (int64_t r = 0; r < 6; ++r) {
    float row_max = 0.0F;
    int64_t argmax = 0;
    for (int64_t c = 0; c < 64; ++c) {
      if (std::abs(w.At(r, c)) > row_max) {
        row_max = std::abs(w.At(r, c));
        argmax = c;
      }
    }
    if (row_max == 0.0F) {
      EXPECT_EQ(q.scales[static_cast<size_t>(r)], 1.0F);
      for (int64_t c = 0; c < 64; ++c) {
        EXPECT_EQ(q.data[static_cast<size_t>(r * 64 + c)], 0);
      }
      continue;
    }
    EXPECT_NEAR(q.scales[static_cast<size_t>(r)], row_max / 127.0F,
                1e-6F * row_max);
    EXPECT_EQ(std::abs(q.data[static_cast<size_t>(r * 64 + argmax)]), 127);
  }
}

TEST(QuantizeProperty, RoundTripErrorAtMostHalfScale) {
  // quantize -> dequantize error <= scale/2 for every in-range activation.
  Rng rng(41);
  std::vector<float> x(512);
  for (auto& v : x) {
    v = rng.NextGaussian() * 2.5F;
  }
  const float scale = ActivationScale(x.data(), static_cast<int64_t>(x.size()));
  std::vector<int8_t> q(x.size());
  QuantizeActivations(x.data(), q.data(), static_cast<int64_t>(x.size()), scale);
  for (size_t i = 0; i < x.size(); ++i) {
    const float deq = static_cast<float>(q[i]) * scale;
    EXPECT_LE(std::abs(deq - x[i]), scale / 2.0F + 1e-6F)
        << "i=" << i << " x=" << x[i] << " q=" << static_cast<int>(q[i]);
  }
}

TEST(QuantizeProperty, SaturationAtInt8Extremes) {
  // Values beyond the representable range clamp to +-127 (never wrap, never
  // reach -128), including extreme magnitudes.
  const float scale = 0.1F;
  std::vector<float> x{12.7F,  12.75F,  13.0F,  1e30F,  1e9F,
                       -12.7F, -12.75F, -13.0F, -1e30F, -1e9F};
  std::vector<int8_t> q(x.size());
  QuantizeActivations(x.data(), q.data(), static_cast<int64_t>(x.size()), scale);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(q[i], 127) << "x=" << x[i];
  }
  for (size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(q[i], -127) << "x=" << x[i];
  }
  // In-range values still round to nearest, half away from zero.
  std::vector<float> y{0.04F, 0.05F, 0.06F, -0.05F, -0.26F};
  std::vector<int8_t> qy(y.size());
  QuantizeActivations(y.data(), qy.data(), static_cast<int64_t>(y.size()), scale);
  EXPECT_EQ(qy[0], 0);
  EXPECT_EQ(qy[1], 1);
  EXPECT_EQ(qy[2], 1);
  EXPECT_EQ(qy[3], -1);
  EXPECT_EQ(qy[4], -3);

  // Non-finite inputs: +-inf clamp like any out-of-range value; NaN resolves to
  // +127, identically in the vectorized body and the scalar tail (19 elements
  // spans both on 16-lane targets).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> z(19, nan);
  z[1] = inf;
  z[18] = -inf;
  std::vector<int8_t> qz(z.size());
  QuantizeActivations(z.data(), qz.data(), static_cast<int64_t>(z.size()), scale);
  EXPECT_EQ(qz[1], 127);
  EXPECT_EQ(qz[18], -127);
  for (size_t i = 0; i < z.size(); ++i) {
    if (i != 1 && i != 18) {
      EXPECT_EQ(qz[i], 127) << "NaN at index " << i;
    }
  }
}

TEST(QuantizeProperty, WeightQuantizationNeverProducesMinus128) {
  // Symmetric quantization uses codes [-127, 127]; -128 would break the
  // unsigned-bias trick in the packed dot4 kernel's error analysis.
  Rng rng(42);
  Tensor w = Tensor::Randn({16, 33}, rng, 10.0F);
  QuantizedWeights q = QuantizeWeightsPerChannel(w);
  for (int8_t v : q.data) {
    EXPECT_GE(v, -127);
  }
}

// The packed dot4 GEMM behind Int8GemmTransB/Int8GemmWeightLhs is exact in
// int32, so the requantized outputs must match a naive reference bit for bit.
TEST(Int8Kernels, MatchNaiveReferenceBitwise) {
  Rng rng(43);
  const int64_t m = 9;
  const int64_t k = 70;  // k % 4 != 0: exercises dot4 padding
  const int64_t n = 13;
  Tensor w = Tensor::Randn({n, k}, rng);
  QuantizedWeights q = QuantizeWeightsPerChannel(w);
  std::vector<int8_t> a(static_cast<size_t>(m * k));
  for (auto& v : a) {
    v = static_cast<int8_t>(rng.NextBelow(255)) ;
  }
  std::vector<float> bias(static_cast<size_t>(n));
  for (auto& v : bias) {
    v = rng.NextGaussian();
  }
  const float a_scale = 0.037F;

  std::vector<float> got(static_cast<size_t>(m * n));
  Int8GemmTransB(a.data(), a_scale, q, bias.data(), got.data(), m);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(a[static_cast<size_t>(i * k + p)]) *
               static_cast<int32_t>(q.data[static_cast<size_t>(j * k + p)]);
      }
      const float want = static_cast<float>(acc) * a_scale *
                             q.scales[static_cast<size_t>(j)] +
                         bias[static_cast<size_t>(j)];
      ASSERT_EQ(got[static_cast<size_t>(i * n + j)], want) << i << "," << j;
    }
  }

  // Weight-LHS orientation (the conv path): C[n_w, cols] = Wq * B.
  const int64_t cols = 21;
  std::vector<int8_t> b(static_cast<size_t>(k * cols));
  for (auto& v : b) {
    v = static_cast<int8_t>(rng.NextBelow(255));
  }
  std::vector<float> got2(static_cast<size_t>(n * cols));
  Int8GemmWeightLhs(q, b.data(), a_scale, bias.data(), got2.data(), cols);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < cols; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(q.data[static_cast<size_t>(r * k + p)]) *
               static_cast<int32_t>(b[static_cast<size_t>(p * cols + j)]);
      }
      const float want =
          static_cast<float>(acc) * (a_scale * q.scales[static_cast<size_t>(r)]) +
          bias[static_cast<size_t>(r)];
      ASSERT_EQ(got2[static_cast<size_t>(r * cols + j)], want) << r << "," << j;
    }
  }
}

TEST(Quantize, FakeQuantPreservesScale) {
  Rng rng(9);
  Tensor t = Tensor::Randn({100}, rng, 2.0F);
  Tensor orig = t.Clone();
  FakeQuantizeInt8(t);
  for (int64_t i = 0; i < t.NumEl(); ++i) {
    EXPECT_NEAR(t.Data()[i], orig.Data()[i], orig.AbsMax() / 100.0F);
  }
}

}  // namespace
}  // namespace egeria
