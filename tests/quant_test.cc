// Quantization correctness: round-trip error bounds, int8/fp16 kernels vs float
// layers, observer calibration, and reference-model clone fidelity (the property
// Table 2 depends on: an int8 reference stays semantically close to the model).
#include <gtest/gtest.h>

#include <memory>

#include "src/models/chain_model.h"
#include "src/models/resnet.h"
#include "src/core/module_partitioner.h"
#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/quant/quantize.h"
#include "src/quant/quantized_modules.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

TEST(Quantize, WeightRoundTripErrorBounded) {
  Rng rng(1);
  Tensor w = Tensor::Randn({8, 32}, rng);
  QuantizedWeights q = QuantizeWeightsPerChannel(w);
  for (int64_t r = 0; r < 8; ++r) {
    float row_max = 0.0F;
    for (int64_t c = 0; c < 32; ++c) {
      row_max = std::max(row_max, std::abs(w.At(r, c)));
    }
    for (int64_t c = 0; c < 32; ++c) {
      const float deq = static_cast<float>(q.data[static_cast<size_t>(r * 32 + c)]) *
                        q.scales[static_cast<size_t>(r)];
      // Symmetric int8: error <= scale/2 = row_max / 254.
      EXPECT_LE(std::abs(deq - w.At(r, c)), row_max / 254.0F + 1e-6F);
    }
  }
}

TEST(Quantize, ActivationScaleAndClamp) {
  std::vector<float> x{-10.0F, 5.0F, 0.0F, 2.5F};
  const float scale = ActivationScale(x.data(), 4);
  EXPECT_NEAR(scale, 10.0F / 127.0F, 1e-6F);
  std::vector<int8_t> q(4);
  QuantizeActivations(x.data(), q.data(), 4, scale);
  EXPECT_EQ(q[0], -127);
  EXPECT_NEAR(static_cast<float>(q[1]) * scale, 5.0F, scale);
}

TEST(Quantize, ObserverTracksMax) {
  MinMaxObserver obs;
  std::vector<float> a{1.0F, -2.0F};
  std::vector<float> b{0.5F, 7.0F};
  obs.Observe(a.data(), 2);
  obs.Observe(b.data(), 2);
  EXPECT_NEAR(obs.Scale(), 7.0F / 127.0F, 1e-6F);
}

TEST(QuantLinear, MatchesFloatWithinTolerance) {
  Rng rng(2);
  Linear fp("fc", 16, 8, rng);
  QuantLinear q(fp, QuantMode::kDynamic);
  Tensor x = Tensor::Randn({4, 16}, rng);
  fp.SetTraining(false);
  Tensor yf = fp.Forward(x);
  Tensor yq = q.Forward(x);
  const float range = yf.AbsMax();
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    EXPECT_NEAR(yq.Data()[i], yf.Data()[i], 0.05F * range + 1e-3F) << i;
  }
}

TEST(QuantConv2d, MatchesFloatWithinTolerance) {
  Rng rng(3);
  Conv2d fp("conv", 3, 6, 3, rng, 1, 1, 1, /*bias=*/true);
  QuantConv2d q(fp, QuantMode::kStatic);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  fp.SetTraining(false);
  Tensor yf = fp.Forward(x);
  Tensor yq = q.Forward(x);  // First forward self-calibrates the observer.
  const float range = yf.AbsMax();
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    EXPECT_NEAR(yq.Data()[i], yf.Data()[i], 0.05F * range + 1e-3F);
  }
}

TEST(QuantConv2d, StaticScaleFreezesAfterCalibration) {
  Rng rng(4);
  Conv2d fp("conv", 2, 2, 3, rng);
  QuantConv2d q(fp, QuantMode::kStatic);
  Tensor big = Tensor::Randn({1, 2, 6, 6}, rng, 5.0F);
  Tensor small = Tensor::Randn({1, 2, 6, 6}, rng, 0.01F);
  q.Forward(big);
  q.Forward(big);  // kStaticCalibrationBatches = 2: observer now frozen.
  // A tiny input after calibration uses the frozen (large) scale: its quantized
  // representation collapses toward zero instead of rescaling per batch.
  Tensor y_static = q.Forward(small);
  QuantConv2d q_dyn(fp, QuantMode::kDynamic);
  Tensor y_dyn = q_dyn.Forward(small);
  EXPECT_LT(y_static.AbsMax(), y_dyn.AbsMax() + 1e-6F);
}

TEST(Fp16Linear, MatchesFloatClosely) {
  Rng rng(5);
  Linear fp("fc", 12, 6, rng);
  Fp16Linear h(fp);
  Tensor x = Tensor::Randn({3, 12}, rng);
  fp.SetTraining(false);
  Tensor yf = fp.Forward(x);
  Tensor yh = h.Forward(x);
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    EXPECT_NEAR(yh.Data()[i], yf.Data()[i], 0.01F * std::max(1.0F, yf.AbsMax()));
  }
}

TEST(Fp16Conv2d, MatchesFloatClosely) {
  Rng rng(6);
  Conv2d fp("conv", 2, 4, 3, rng);
  Fp16Conv2d h(fp);
  Tensor x = Tensor::Randn({2, 2, 6, 6}, rng);
  fp.SetTraining(false);
  Tensor yf = fp.Forward(x);
  Tensor yh = h.Forward(x);
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    EXPECT_NEAR(yh.Data()[i], yf.Data()[i], 0.02F * std::max(1.0F, yf.AbsMax()));
  }
}

TEST(Factories, PrecisionDispatch) {
  EXPECT_EQ(MakeInferenceFactory(Precision::kInt8, QuantMode::kStatic)->precision(),
            Precision::kInt8);
  EXPECT_EQ(MakeInferenceFactory(Precision::kFloat16, QuantMode::kStatic)->precision(),
            Precision::kFloat16);
  EXPECT_EQ(MakeInferenceFactory(Precision::kFloat32, QuantMode::kStatic)->precision(),
            Precision::kFloat32);
}

// A quantized ResNet reference stays close to the float model at every stage
// boundary — this is what makes int8 plasticity evaluation sound.
TEST(ReferenceClone, Int8ChainTracksFloatChain) {
  Rng rng(7);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 1;
  mcfg.base_width = 8;
  auto model = PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng),
                                  PartitionConfig{.target_modules = 4});
  model->SetTraining(false);

  Int8Factory factory(QuantMode::kStatic);
  auto ref = model->CloneForInference(factory);

  Tensor x = Tensor::Randn({4, 3, 16, 16}, rng);
  Tensor yf = model->ForwardFrom(0, x);
  ref->ForwardFrom(0, x);  // calibration pass
  Tensor yq = ref->ForwardFrom(0, x);
  ASSERT_TRUE(yq.SameShape(yf));
  double err = 0.0;
  for (int64_t i = 0; i < yf.NumEl(); ++i) {
    err += std::abs(static_cast<double>(yq.Data()[i]) - yf.Data()[i]);
  }
  err /= static_cast<double>(yf.NumEl());
  EXPECT_LT(err, 0.15 * std::max<double>(1.0, yf.AbsMax()));
}

TEST(ReferenceClone, QuantizedModulesRefuseBackward) {
  Rng rng(8);
  Linear fp("fc", 4, 4, rng);
  QuantLinear q(fp, QuantMode::kDynamic);
  Tensor x = Tensor::Randn({2, 4}, rng);
  q.Forward(x);
  EXPECT_DEATH(q.Backward(x), "inference-only");
}

TEST(Quantize, FakeQuantPreservesScale) {
  Rng rng(9);
  Tensor t = Tensor::Randn({100}, rng, 2.0F);
  Tensor orig = t.Clone();
  FakeQuantizeInt8(t);
  for (int64_t i = 0; i < t.NumEl(); ++i) {
    EXPECT_NEAR(t.Data()[i], orig.Data()[i], orig.AbsMax() / 100.0F);
  }
}

}  // namespace
}  // namespace egeria
