// Checkpoint/restore subsystem: hardened serialization (versioned formats,
// per-tensor checksums, corruption rejection), state-dict round trips over
// every model in src/models/, activation-cache spill hygiene, the manifest
// commit/retention protocol, optimizer-state round trips (incl. the elastic
// shard re-fold), freezing-policy state round trips, and the Trainer-level
// bitwise-resume contract.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/distributed/reduction_contract.h"

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/state_dict.h"
#include "src/core/activation_cache.h"
#include "src/core/module_partitioner.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_image.h"
#include "src/models/bert.h"
#include "src/models/deeplab.h"
#include "src/models/mobilenetv2.h"
#include "src/models/resnet.h"
#include "src/models/transformer.h"
#include "src/optim/lr_scheduler.h"
#include "src/optim/sharded_optimizer.h"
#include "src/tensor/serialize.h"

namespace egeria {
namespace {

namespace fs = std::filesystem;

std::string MakeTempDir(const std::string& label) {
  std::string tmpl = (fs::temp_directory_path() / ("egeria-" + label + "-XXXXXX")).string();
  EXPECT_NE(nullptr, mkdtemp(tmpl.data()));
  return tmpl;
}

struct TempDir {
  explicit TempDir(const std::string& label) : path(MakeTempDir(label)) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

uint64_t HashTensor(const Tensor& t) {
  return Fnv1a64(t.Data(), static_cast<size_t>(t.NumEl()) * sizeof(float));
}

// ---------------------------------------------------------------- serialization

TEST(Serialize, TensorRoundTripV2PreservesBits) {
  Rng rng(1);
  Tensor t = Tensor::Randn({3, 5, 7}, rng);
  std::stringstream ss;
  WriteTensor(ss, t);
  Tensor back = ReadTensor(ss);
  ASSERT_TRUE(back.Defined());
  ASSERT_EQ(back.Shape(), t.Shape());
  EXPECT_EQ(0, std::memcmp(back.Data(), t.Data(),
                           static_cast<size_t>(t.NumEl()) * sizeof(float)));
}

TEST(Serialize, ReadsLegacyV1TensorFormat) {
  // Hand-build a v1 blob: 'EGTN' | ndim | dims | raw f32 (no version, no checksum).
  Rng rng(2);
  Tensor t = Tensor::Randn({2, 3}, rng);
  std::stringstream ss;
  const uint32_t magic = 0x4E544745;
  const uint32_t ndim = 2;
  ss.write(reinterpret_cast<const char*>(&magic), 4);
  ss.write(reinterpret_cast<const char*>(&ndim), 4);
  for (int64_t d : t.Shape()) {
    ss.write(reinterpret_cast<const char*>(&d), 8);
  }
  ss.write(reinterpret_cast<const char*>(t.Data()), t.NumEl() * sizeof(float));
  Tensor back = ReadTensor(ss);
  ASSERT_TRUE(back.Defined());
  EXPECT_EQ(HashTensor(back), HashTensor(t));
}

TEST(Serialize, RejectsCorruptTensors) {
  Rng rng(3);
  Tensor t = Tensor::Randn({4, 4}, rng);
  std::stringstream good;
  WriteTensor(good, t);
  const std::string bytes = good.str();

  {  // Bad magic.
    std::string b = bytes;
    b[0] = 'X';
    std::stringstream ss(b);
    EXPECT_FALSE(ReadTensor(ss).Defined());
  }
  {  // Absurd ndim.
    std::string b = bytes;
    b[8] = 99;  // ndim field (after magic + version).
    std::stringstream ss(b);
    EXPECT_FALSE(ReadTensor(ss).Defined());
  }
  {  // Truncated payload.
    std::stringstream ss(bytes.substr(0, bytes.size() - 7));
    EXPECT_FALSE(ReadTensor(ss).Defined());
  }
  {  // Flipped data bit -> checksum mismatch.
    std::string b = bytes;
    b[b.size() - 3] ^= 0x40;
    std::stringstream ss(b);
    EXPECT_FALSE(ReadTensor(ss).Defined());
  }
  {  // Empty stream.
    std::stringstream ss;
    EXPECT_FALSE(ReadTensor(ss).Defined());
  }
}

TEST(Serialize, CheckpointMapRoundTripAndCorruptionRejection) {
  TempDir dir("ser");
  Rng rng(4);
  Checkpoint ckpt;
  ckpt["a"] = Tensor::Randn({3}, rng);
  ckpt["b.w"] = Tensor::Randn({2, 2}, rng);
  const std::string path = dir.path + "/c.state";
  ASSERT_TRUE(SaveCheckpoint(path, ckpt));

  Checkpoint back;
  ASSERT_TRUE(LoadCheckpoint(path, back));
  ASSERT_EQ(back.size(), 2U);
  EXPECT_EQ(HashTensor(back["a"]), HashTensor(ckpt["a"]));
  EXPECT_EQ(HashTensor(back["b.w"]), HashTensor(ckpt["b.w"]));

  // Truncate the file: load must fail and leave the map empty.
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::stringstream buf;
    buf << is.rdbuf();
    bytes = buf.str();
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(LoadCheckpoint(path, back));
  EXPECT_TRUE(back.empty());
}

// ---------------------------------------------------------------- state dicts

// Builds each model twice with different seeds, saves A, loads into B, and
// demands bitwise-equal inference outputs — proving the state dict covers
// every tensor the forward depends on (weights AND normalization statistics).
TEST(StateDict, RoundTripReproducesForwardBitwiseForEveryModel) {
  struct Case {
    std::string name;
    std::function<std::unique_ptr<ChainModel>(uint64_t)> make;
    std::function<Batch(Rng&)> make_batch;
  };
  std::vector<Case> cases;

  cases.push_back({"resnet",
                   [](uint64_t seed) -> std::unique_ptr<ChainModel> {
                     Rng rng(seed);
                     CifarResNetConfig cfg;
                     cfg.blocks_per_stage = 1;
                     cfg.base_width = 4;
                     cfg.num_classes = 4;
                     return PartitionIntoChain("r", BuildCifarResNetBlocks(cfg, rng),
                                               PartitionConfig{.target_modules = 3});
                   },
                   [](Rng& rng) {
                     Batch b;
                     b.input = Tensor::Randn({2, 3, 12, 12}, rng);
                     return b;
                   }});
  cases.push_back({"mobilenetv2",
                   [](uint64_t seed) -> std::unique_ptr<ChainModel> {
                     Rng rng(seed);
                     MobileNetV2Config cfg;
                     cfg.channel_divisor = 16;
                     cfg.num_classes = 4;
                     return PartitionIntoChain("m", BuildMobileNetV2Blocks(cfg, rng),
                                               PartitionConfig{.target_modules = 4});
                   },
                   [](Rng& rng) {
                     Batch b;
                     b.input = Tensor::Randn({2, 3, 16, 16}, rng);
                     return b;
                   }});
  cases.push_back({"deeplab",
                   [](uint64_t seed) -> std::unique_ptr<ChainModel> {
                     Rng rng(seed);
                     DeepLabConfig cfg;
                     cfg.backbone_blocks_per_stage = 1;
                     cfg.base_width = 4;
                     cfg.num_classes = 3;
                     cfg.output_h = 12;
                     cfg.output_w = 12;
                     return PartitionIntoChain("d", BuildDeepLabBlocks(cfg, rng),
                                               PartitionConfig{.target_modules = 4});
                   },
                   [](Rng& rng) {
                     Batch b;
                     b.input = Tensor::Randn({2, 3, 12, 12}, rng);
                     return b;
                   }});
  cases.push_back({"bert",
                   [](uint64_t seed) -> std::unique_ptr<ChainModel> {
                     Rng rng(seed);
                     BertConfig cfg;
                     cfg.vocab = 16;
                     cfg.dim = 8;
                     cfg.heads = 2;
                     cfg.ffn_dim = 16;
                     cfg.num_layers = 2;
                     cfg.max_len = 12;
                     return PartitionIntoChain("b", BuildBertBlocks(cfg, rng),
                                               PartitionConfig{.target_modules = 3});
                   },
                   [](Rng& rng) {
                     Batch b;
                     b.input = Tensor({2, 10});
                     for (int64_t i = 0; i < 20; ++i) {
                       b.input.Data()[i] = static_cast<float>(3 + rng.NextBelow(10));
                     }
                     return b;
                   }});
  cases.push_back({"transformer",
                   [](uint64_t seed) -> std::unique_ptr<ChainModel> {
                     Rng rng(seed);
                     TransformerConfig cfg;
                     cfg.vocab = 16;
                     cfg.dim = 8;
                     cfg.heads = 2;
                     cfg.ffn_dim = 16;
                     cfg.num_encoder_layers = 2;
                     cfg.num_decoder_layers = 2;
                     cfg.max_len = 8;
                     return std::make_unique<TransformerChainModel>("t", cfg, rng);
                   },
                   [](Rng& rng) {
                     Batch b;
                     b.input = Tensor({2, 6});
                     b.target_input = Tensor({2, 6});
                     for (int64_t i = 0; i < 12; ++i) {
                       b.input.Data()[i] = static_cast<float>(3 + rng.NextBelow(12));
                       b.target_input.Data()[i] =
                           static_cast<float>(3 + rng.NextBelow(12));
                     }
                     return b;
                   }});

  TempDir dir("sd");
  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    std::unique_ptr<ChainModel> a = c.make(3);
    std::unique_ptr<ChainModel> b = c.make(11);  // Different init on purpose.
    Rng batch_rng(41);
    Batch batch = c.make_batch(batch_rng);
    a->SetTraining(false);
    b->SetTraining(false);
    a->SetBatch(batch);
    const Tensor ref = a->ForwardFrom(0, batch.input);

    ASSERT_NE(HashModelState(*a), HashModelState(*b));
    const std::string path = dir.path + "/" + c.name + ".state";
    ASSERT_TRUE(SaveModelState(path, *a));
    ASSERT_TRUE(LoadModelStateFile(path, *b));
    EXPECT_EQ(HashModelState(*a), HashModelState(*b));

    b->SetBatch(batch);
    const Tensor out = b->ForwardFrom(0, batch.input);
    ASSERT_TRUE(out.SameShape(ref));
    EXPECT_EQ(0, std::memcmp(out.Data(), ref.Data(),
                             static_cast<size_t>(ref.NumEl()) * sizeof(float)))
        << c.name << ": forward diverged after state-dict round trip";
  }
}

TEST(StateDict, CoversBatchNormRunningStatistics) {
  // Train-mode forwards move BN running stats; a state dict saved afterwards
  // must carry them (a params-only save would not).
  auto make = [](uint64_t seed) {
    Rng rng(seed);
    CifarResNetConfig cfg;
    cfg.blocks_per_stage = 1;
    cfg.base_width = 4;
    cfg.num_classes = 4;
    return PartitionIntoChain("r", BuildCifarResNetBlocks(cfg, rng),
                              PartitionConfig{.target_modules = 3});
  };
  auto a = make(3);
  const uint64_t before = HashModelState(*a);
  Rng rng(5);
  a->SetTraining(true);
  a->ForwardFrom(0, Tensor::Randn({4, 3, 12, 12}, rng));
  EXPECT_NE(HashModelState(*a), before) << "BN stats not part of the state dict";

  auto b = make(3);  // Same seed: params equal, stats differ.
  TempDir dir("bn");
  ASSERT_TRUE(SaveModelState(dir.path + "/m.state", *a));
  ASSERT_TRUE(LoadModelStateFile(dir.path + "/m.state", *b));
  EXPECT_EQ(HashModelState(*a), HashModelState(*b));
}

TEST(StateDict, LoadRejectsMismatchedArchitecture) {
  auto make = [](int stages, int64_t width) {
    Rng rng(3);
    CifarResNetConfig cfg;
    cfg.blocks_per_stage = 1;
    cfg.base_width = width;
    cfg.num_classes = 4;
    return PartitionIntoChain("r", BuildCifarResNetBlocks(cfg, rng),
                              PartitionConfig{.target_modules = stages});
  };
  auto a = make(3, 4);
  auto wider = make(3, 8);
  TempDir dir("mm");
  ASSERT_TRUE(SaveModelState(dir.path + "/m.state", *a));
  EXPECT_FALSE(LoadModelStateFile(dir.path + "/m.state", *wider));
}

// ------------------------------------------------------------ activation cache

TEST(ActivationCacheHygiene, CorruptSpillBecomesMissNotGarbage) {
  TempDir dir("spill");
  ActivationCache cache(dir.path + "/c", /*memory_entries=*/1);
  cache.SetStage(0);
  Rng rng(6);
  Tensor acts = Tensor::Randn({3, 4}, rng);
  cache.StoreBatch({10, 11, 12}, acts);
  ASSERT_TRUE(cache.HasAll({10, 11, 12}));

  // Corrupt sample 11's spill on disk (memory only holds the latest entry, so
  // fetching must hit the disk path for it). Truncation models a spill torn
  // by a crash mid-write. Filename follows the composite-key spill schema
  // v<format>_s<stage>_p<precision>_<id>.egt (legacy SetStage => fp32, gen 0).
  const std::string victim = dir.path + "/c/v1_s0_p0_11.egt";
  ASSERT_TRUE(fs::exists(victim));
  std::error_code ec;
  fs::resize_file(victim, fs::file_size(victim) / 2, ec);
  ASSERT_FALSE(ec);
  Tensor fetched = cache.FetchBatch({10, 11, 12});
  EXPECT_FALSE(fetched.Defined()) << "corrupt spill fed back as activations";
  EXPECT_GT(cache.Stats().misses, 0);
}

TEST(ActivationCacheHygiene, SetStageSweepsStaleSpillFiles) {
  TempDir dir("sweep");
  const std::string cdir = dir.path + "/c";
  {
    ActivationCache cache(cdir, /*memory_entries=*/8);
    cache.SetStage(0);
    Rng rng(7);
    cache.StoreBatch({1, 2}, Tensor::Randn({2, 4}, rng));
  }
  // The destructor removes the directory; recreate it with a leftover spill
  // from a "previous incarnation" the new instance never tracked.
  fs::create_directories(cdir);
  {
    std::ofstream os(cdir + "/s0_99.egt", std::ios::binary);
    os << "stale-bytes-from-a-crashed-run";
  }
  ActivationCache cache(cdir, /*memory_entries=*/8);
  cache.SetStage(1);  // Stage change sweeps everything, tracked or not.
  EXPECT_FALSE(fs::exists(cdir + "/s0_99.egt"));
}

// ----------------------------------------------------------- manifest protocol

TEST(Manifest, CommitReadVerifyRoundTrip) {
  TempDir dir("mf");
  CkptManifest m;
  m.kind = "dist";
  m.iter = 42;
  m.world = 3;
  m.frontier = 1;
  m.next_frontier = 2;
  m.frozen_elems = 100;
  m.active_elems = 900;
  m.dir = CheckpointStepDir(dir.path, 42);
  ASSERT_TRUE(EnsureDir(m.dir));
  {
    std::ofstream os(m.dir + "/model.state", std::ios::binary);
    os << "payload-bytes";
  }
  ASSERT_TRUE(AddManifestFile(m, "model.state"));
  ASSERT_TRUE(CommitManifest(m));

  const auto back = ReadManifest(m.dir);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, "dist");
  EXPECT_EQ(back->iter, 42);
  EXPECT_EQ(back->world, 3);
  EXPECT_EQ(back->frontier, 1);
  EXPECT_EQ(back->next_frontier, 2);
  EXPECT_EQ(back->frozen_elems, 100);
  EXPECT_EQ(back->active_elems, 900);
  ASSERT_EQ(back->files.size(), 1U);
  std::string error;
  EXPECT_TRUE(VerifyCheckpointFiles(*back, &error)) << error;

  // Tamper with the payload: verification must fail.
  {
    std::ofstream os(m.dir + "/model.state", std::ios::binary);
    os << "payload-bytez";
  }
  EXPECT_FALSE(VerifyCheckpointFiles(*back, &error));
}

TEST(Manifest, LatestSkipsIncompleteAndCorruptSteps) {
  TempDir dir("latest");
  auto write_step = [&](int64_t iter, bool commit) {
    CkptManifest m;
    m.kind = "dist";
    m.iter = iter;
    m.dir = CheckpointStepDir(dir.path, iter);
    EXPECT_TRUE(EnsureDir(m.dir));
    {
      std::ofstream os(m.dir + "/model.state", std::ios::binary);
      os << "payload" << iter;
    }
    EXPECT_TRUE(AddManifestFile(m, "model.state"));
    if (commit) {
      EXPECT_TRUE(CommitManifest(m));
    }
    return m;
  };
  write_step(10, /*commit=*/true);
  write_step(20, /*commit=*/true);
  write_step(30, /*commit=*/false);  // Crashed mid-write: no manifest.

  auto latest = FindLatestCheckpoint(dir.path);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iter, 20);

  // Corrupt step 20's payload: discovery must fall back to step 10.
  {
    std::ofstream os(CheckpointStepDir(dir.path, 20) + "/model.state",
                     std::ios::binary);
    os << "tampered";
  }
  latest = FindLatestCheckpoint(dir.path);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iter, 10);
}

TEST(Manifest, RetentionKeepsLastNAndSweepsDebris) {
  TempDir dir("retain");
  auto write_step = [&](int64_t iter, bool commit) {
    CkptManifest m;
    m.kind = "trainer";
    m.iter = iter;
    m.dir = CheckpointStepDir(dir.path, iter);
    EXPECT_TRUE(EnsureDir(m.dir));
    {
      std::ofstream os(m.dir + "/model.state", std::ios::binary);
      os << "p" << iter;
    }
    EXPECT_TRUE(AddManifestFile(m, "model.state"));
    if (commit) {
      EXPECT_TRUE(CommitManifest(m));
    }
  };
  write_step(5, true);
  write_step(7, false);  // Old debris.
  write_step(10, true);
  write_step(15, true);
  write_step(20, true);
  write_step(25, false);  // Possibly a write in progress: must survive.

  ApplyRetention(dir.path, /*keep_last=*/2);
  EXPECT_FALSE(fs::exists(CheckpointStepDir(dir.path, 5)));
  EXPECT_FALSE(fs::exists(CheckpointStepDir(dir.path, 7)));
  EXPECT_FALSE(fs::exists(CheckpointStepDir(dir.path, 10)));
  EXPECT_TRUE(fs::exists(CheckpointStepDir(dir.path, 15)));
  EXPECT_TRUE(fs::exists(CheckpointStepDir(dir.path, 20)));
  EXPECT_TRUE(fs::exists(CheckpointStepDir(dir.path, 25)));
}

// ------------------------------------------------------------- optimizer state

TEST(OptimizerState, SgdAndAdamRoundTripBitwise) {
  auto make = [] {
    Rng rng(3);
    CifarResNetConfig cfg;
    cfg.blocks_per_stage = 1;
    cfg.base_width = 4;
    cfg.num_classes = 4;
    return PartitionIntoChain("r", BuildCifarResNetBlocks(cfg, rng),
                              PartitionConfig{.target_modules = 3});
  };
  for (const bool adam : {false, true}) {
    SCOPED_TRACE(adam ? "adam" : "sgd");
    auto model = make();
    auto model2 = make();
    std::unique_ptr<Optimizer> opt;
    std::unique_ptr<Optimizer> opt2;
    if (adam) {
      opt = std::make_unique<Adam>();
      opt2 = std::make_unique<Adam>();
    } else {
      opt = std::make_unique<Sgd>(0.9F, 1e-4F);
      opt2 = std::make_unique<Sgd>(0.9F, 1e-4F);
    }
    // Accumulate some state with synthetic gradients.
    Rng rng(9);
    const std::vector<Parameter*> params = model->ParamsFrom(0);
    for (int step = 0; step < 3; ++step) {
      for (Parameter* p : params) {
        p->grad = Tensor::Randn(p->value.Shape(), rng, 0.01F);
      }
      opt->Step(params, 0.05F);
    }

    std::vector<Parameter*> p1;
    std::vector<std::string> names;
    auto named = NamedParams(*model);
    for (auto& [name, p] : named) {
      names.push_back(name);
      p1.push_back(p);
    }
    Checkpoint state;
    opt->ExportState(p1, names, state);
    EXPECT_FALSE(state.empty());

    // Import into a fresh optimizer over a DIFFERENT (same-arch) model, then
    // one more identical step on both: updates must match bitwise.
    model2->CopyStateFrom(*model);
    std::vector<Parameter*> p2;
    auto named2 = NamedParams(*model2);
    std::vector<std::string> names2;
    for (auto& [name, p] : named2) {
      names2.push_back(name);
      p2.push_back(p);
    }
    ASSERT_TRUE(opt2->ImportState(p2, names2, state));
    EXPECT_EQ(opt2->StateBytes(), opt->StateBytes());

    Rng grads(77);
    for (size_t i = 0; i < p1.size(); ++i) {
      Tensor g = Tensor::Randn(p1[i]->value.Shape(), grads, 0.01F);
      p1[i]->grad = g.Clone();
      p2[i]->grad = g.Clone();
    }
    opt->Step(p1, 0.05F);
    opt2->Step(p2, 0.05F);
    EXPECT_EQ(HashModelState(*model), HashModelState(*model2));
  }
}

TEST(OptimizerState, ElasticShardRefoldPreservesEveryElement) {
  // Fabricate a world-4 partition over a non-divisible active space, then
  // re-fold to world 3 and world 5: every element of the flat velocity vector
  // must land, bit-identical, in exactly the rank that owns it under the new
  // reduction-contract partition.
  const int64_t frozen = 11;
  const int64_t active = 103;
  const int old_world = 4;
  std::vector<float> flat(static_cast<size_t>(active));
  for (size_t i = 0; i < flat.size(); ++i) {
    flat[i] = static_cast<float>(i) * 1.25F + 0.5F;
  }
  std::vector<ShardedSgd::ShardState> saved;
  for (int r = 0; r < old_world; ++r) {
    const Span s = ChunkSpan(active, old_world, r);
    ShardedSgd::ShardState st;
    st.frozen_elems = frozen;
    st.active_elems = active;
    st.global_begin = frozen + s.begin;
    st.global_end = frozen + s.end;
    st.velocity.assign(flat.begin() + s.begin, flat.begin() + s.end);
    saved.push_back(std::move(st));
  }

  for (const int new_world : {3, 5, 4, 1}) {
    SCOPED_TRACE("new_world=" + std::to_string(new_world));
    for (int rank = 0; rank < new_world; ++rank) {
      ShardedSgd opt(0.9F, 0.0F);
      const auto [begin, end] =
          opt.RestoreShard(rank, new_world, frozen, active, saved);
      const Span expect = ChunkSpan(active, new_world, rank);
      EXPECT_EQ(begin, expect.begin);
      EXPECT_EQ(end, expect.end);
      const auto exported = opt.ExportShard();
      ASSERT_EQ(static_cast<int64_t>(exported.velocity.size()), end - begin);
      for (int64_t i = begin; i < end; ++i) {
        ASSERT_EQ(exported.velocity[static_cast<size_t>(i - begin)],
                  flat[static_cast<size_t>(i)])
            << "element " << i << " corrupted by the re-fold";
      }
    }
  }
}

// -------------------------------------------------------- freezing policy state

TEST(PolicyState, SaveLoadReproducesDecisionsBitwise) {
  EgeriaConfig cfg;
  cfg.window_w = 3;
  cfg.tolerance_coef = 0.4;
  FreezingPolicy a(cfg, /*num_stages=*/4, /*lr_is_annealing=*/false);

  // Feed a plasticity series that flattens out; stop halfway.
  auto reading = [](int i) { return 1.0 / (1.0 + 0.5 * i) + 0.001 * (i % 2); };
  int i = 0;
  for (; i < 7; ++i) {
    a.OnPlasticity(a.frontier(), reading(i), 0.05F, i + 1);
  }
  std::stringstream blob;
  a.SaveState(blob);

  FreezingPolicy b(cfg, 4, false);
  ASSERT_TRUE(b.LoadState(blob));
  EXPECT_EQ(b.frontier(), a.frontier());
  EXPECT_EQ(b.window(), a.window());
  EXPECT_EQ(b.ToleranceOf(0), a.ToleranceOf(0));

  // Continue both with the same readings: identical decisions at identical
  // iterations, including the eventual freeze.
  bool froze = false;
  for (; i < 60; ++i) {
    const auto da = a.OnPlasticity(a.frontier(), reading(i), 0.05F, i + 1);
    const auto db = b.OnPlasticity(b.frontier(), reading(i), 0.05F, i + 1);
    ASSERT_EQ(da.has_value(), db.has_value()) << "diverged at reading " << i;
    if (da) {
      froze = true;
      EXPECT_EQ(da->stage, db->stage);
      EXPECT_EQ(da->iter, db->iter);
    }
    ASSERT_EQ(a.frontier(), b.frontier());
  }
  EXPECT_TRUE(froze) << "series never froze; test is hollow";
  EXPECT_FALSE(a.LoadState(blob))
      << "re-loading a drained stream should fail, not fabricate state";
}

// --------------------------------------------------------- trainer-level resume

struct TrainerWorkload {
  std::unique_ptr<StageChainModel> model;
  std::unique_ptr<SyntheticImageDataset> train;
  std::unique_ptr<SyntheticImageDataset> val;
};

TrainerWorkload MakeTrainerWorkload(uint64_t seed = 5) {
  TrainerWorkload w;
  Rng rng(seed);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 1;
  mcfg.base_width = 8;
  mcfg.num_classes = 4;
  w.model = PartitionIntoChain("resnet", BuildCifarResNetBlocks(mcfg, rng),
                               PartitionConfig{.target_modules = 4});
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 256;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise_std = 0.5F;
  w.train = std::make_unique<SyntheticImageDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 64;
  w.val = std::make_unique<SyntheticImageDataset>(vcfg);
  return w;
}

TrainConfig FreezingTrainConfig() {
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.val_batches = 4;
  cfg.enable_egeria = true;
  cfg.egeria.async_controller = false;  // Deterministic: required for bitwise.
  cfg.egeria.eval_interval_n = 8;
  cfg.egeria.window_w = 3;
  cfg.egeria.enable_cache = true;
  cfg.egeria.max_bootstrap_iters = 16;
  cfg.egeria.ref_update_evals = 2;
  return cfg;
}

TEST(TrainerResume, CheckpointedRunResumesBitwiseIdentical) {
  TempDir caches("caches");
  // Ground truth: the uninterrupted freezing run.
  TrainerWorkload wa = MakeTrainerWorkload();
  TrainConfig base = FreezingTrainConfig();
  base.egeria.cache_dir = caches.path + "/a";
  Trainer uninterrupted(*wa.model, *wa.train, *wa.val, base);
  TrainResult ra = uninterrupted.Run();
  ASSERT_GT(ra.final_frontier, 0) << "workload no longer freezes; test is hollow";
  const uint64_t ref_hash = HashModelState(*wa.model);

  // Crash drill: checkpoint every 16 iterations, die at 50, restart.
  TempDir dir("resume");
  TrainerWorkload wb = MakeTrainerWorkload();
  TrainConfig cfg = FreezingTrainConfig();
  cfg.checkpoint.dir = dir.path;
  cfg.checkpoint.interval_iters = 16;
  cfg.checkpoint.keep_last = 2;
  {
    TrainConfig crash = cfg;
    crash.stop_after_iters = 50;
    crash.egeria.cache_dir = caches.path + "/b";
    Trainer first(*wb.model, *wb.train, *wb.val, crash);
    TrainResult r1 = first.Run();
    EXPECT_TRUE(r1.stopped_early);
    EXPECT_EQ(r1.resumed_from_iter, -1);
  }
  // "Restart the process": a fresh model + trainer against the same directory.
  TrainerWorkload wc = MakeTrainerWorkload();
  cfg.egeria.cache_dir = caches.path + "/c";
  Trainer second(*wc.model, *wc.train, *wc.val, cfg);
  TrainResult r2 = second.Run();
  EXPECT_EQ(r2.resumed_from_iter, 50);
  EXPECT_FALSE(r2.stopped_early);
  EXPECT_EQ(r2.final_frontier, ra.final_frontier);
  EXPECT_EQ(HashModelState(*wc.model), ref_hash)
      << "resumed weights diverged from the uninterrupted run";
}

TEST(TrainerResume, AdamStateSurvivesResumeBitwise) {
  // Same drill without Egeria but with Adam: moments + step counters must
  // round-trip for the continuation to match.
  auto run = [](const std::string& ckpt_dir, int64_t stop_after,
                bool fresh) -> std::pair<uint64_t, int64_t> {
    TrainerWorkload w = MakeTrainerWorkload(9);
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch_size = 16;
    cfg.task.kind = TaskKind::kClassification;
    cfg.optimizer = TrainConfig::Optim::kAdam;
    cfg.lr_schedule = std::make_shared<ConstantLr>(0.002F);
    cfg.val_batches = 2;
    if (!ckpt_dir.empty()) {
      cfg.checkpoint.dir = ckpt_dir;
      cfg.checkpoint.interval_iters = 10;
      cfg.checkpoint.resume = !fresh;
    }
    cfg.stop_after_iters = stop_after;
    Trainer t(*w.model, *w.train, *w.val, cfg);
    TrainResult r = t.Run();
    return {HashModelState(*w.model), r.resumed_from_iter};
  };
  const auto [ref_hash, ref_resumed] = run("", -1, true);
  EXPECT_EQ(ref_resumed, -1);
  TempDir dir("adam");
  run(dir.path, 25, /*fresh=*/true);
  const auto [resumed_hash, resumed_from] = run(dir.path, -1, /*fresh=*/false);
  EXPECT_EQ(resumed_from, 25);
  EXPECT_EQ(resumed_hash, ref_hash);
}

}  // namespace
}  // namespace egeria
