// Infrastructure: thread pool, table rendering, logging levels, timers.
#include <gtest/gtest.h>

#include <atomic>

#include "src/util/logging.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace egeria {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) {
    f.wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }  // Destructor joins after finishing queued work.
  EXPECT_EQ(counter.load(), 20);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("|-------|-------|"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Pct(0.285, 1), "28.5%");
  EXPECT_EQ(Table::Pct(1.0, 0), "100%");
}

TEST(Logging, LevelFiltering) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold logging must not crash (and is discarded).
  EGERIA_LOG(kInfo) << "discarded";
  SetLogLevel(before);
}

TEST(Logging, CheckMacroPassesOnTrue) {
  EGERIA_CHECK(1 + 1 == 2);
  EGERIA_CHECK_MSG(true, "never shown");
  EXPECT_DEATH(EGERIA_CHECK_MSG(false, "boom"), "boom");
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink += i;
  }
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  SegmentTimer seg;
  seg.Start();
  seg.Stop();
  seg.Start();
  seg.Stop();
  EXPECT_GE(seg.TotalSeconds(), 0.0);
  seg.Reset();
  EXPECT_EQ(seg.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace egeria
