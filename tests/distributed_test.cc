// Distributed substrate: network model, communication scheduler properties
// (ByteScheduler <= FIFO; Egeria reduces both compute and traffic), real all-reduce
// correctness (ring vs sequential reference, bitwise), shard repartitioning under
// freezing, and the data-parallel harness.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "src/ckpt/checkpoint.h"
#include "src/core/module_partitioner.h"
#include "src/data/synthetic_image.h"
#include "src/distributed/allreduce.h"
#include "src/distributed/comm_scheduler.h"
#include "src/distributed/dist_trainer.h"
#include "src/distributed/dist_workload.h"
#include "src/distributed/flat_view.h"
#include "src/distributed/network_model.h"
#include "src/distributed/reduction_contract.h"
#include "src/distributed/transport/inproc_transport.h"
#include "src/distributed/transport/tcp_transport.h"
#include "src/models/resnet.h"
#include "src/optim/lr_scheduler.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

ClusterConfig TwoByTwo() {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 2;
  return cfg;
}

TEST(NetworkModel, ZeroForSingleGpuOrNoBytes) {
  ClusterConfig single;
  single.num_nodes = 1;
  single.gpus_per_node = 1;
  EXPECT_DOUBLE_EQ(NetworkModel(single).AllReduceSeconds(1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(NetworkModel(TwoByTwo()).AllReduceSeconds(0), 0.0);
}

TEST(NetworkModel, MonotoneInBytesAndNodes) {
  NetworkModel net(TwoByTwo());
  EXPECT_LT(net.AllReduceSeconds(1 << 20), net.AllReduceSeconds(1 << 22));
  ClusterConfig wider = TwoByTwo();
  wider.num_nodes = 5;
  EXPECT_LT(net.AllReduceSeconds(1 << 22),
            NetworkModel(wider).AllReduceSeconds(1 << 22));
}

std::vector<StageCost> SyntheticStages() {
  // Front-light, deep-heavy (CNN-like): 6 stages.
  std::vector<StageCost> stages;
  for (int i = 0; i < 6; ++i) {
    StageCost s;
    s.fp_seconds = 0.002 + 0.001 * i;
    s.bp_seconds = 2.0 * s.fp_seconds;
    s.grad_bytes = int64_t{200000} * (i + 1);
    stages.push_back(s);
  }
  return stages;
}

TEST(CommScheduler, ByteSchedulerNeverSlowerThanFifo) {
  NetworkModel net(TwoByTwo());
  const auto stages = SyntheticStages();
  const auto fifo = SimulateIteration(stages, net, CommPolicy::kFifo);
  const auto bs = SimulateIteration(stages, net, CommPolicy::kByteScheduler);
  EXPECT_LE(bs.iteration_seconds, fifo.iteration_seconds + 1e-9);
  EXPECT_GT(fifo.iteration_seconds, 0.0);
}

TEST(CommScheduler, FreezingReducesIterationTimeAndTraffic) {
  NetworkModel net(TwoByTwo());
  const auto stages = SyntheticStages();
  for (CommPolicy policy : {CommPolicy::kFifo, CommPolicy::kByteScheduler}) {
    const auto full = SimulateIteration(stages, net, policy, 0);
    const auto frozen2 = SimulateIteration(stages, net, policy, 2);
    const auto frozen2_cached =
        SimulateIteration(stages, net, policy, 2, /*prefix_fp_cached=*/true);
    EXPECT_LT(frozen2.iteration_seconds, full.iteration_seconds);
    EXPECT_LT(frozen2.comm_seconds, full.comm_seconds);
    EXPECT_LE(frozen2_cached.iteration_seconds, frozen2.iteration_seconds + 1e-12);
  }
}

TEST(CommScheduler, NoCommMeansComputeBound) {
  ClusterConfig single;
  single.num_nodes = 1;
  single.gpus_per_node = 1;
  NetworkModel net(single);
  const auto stages = SyntheticStages();
  const auto t = SimulateIteration(stages, net, CommPolicy::kFifo);
  double compute = 0.0;
  for (const auto& s : stages) {
    compute += s.fp_seconds + s.bp_seconds;
  }
  EXPECT_NEAR(t.iteration_seconds, compute, 1e-9);
  EXPECT_DOUBLE_EQ(t.exposed_comm_seconds, 0.0);
}

TEST(CommScheduler, ExposedCommShrinksWithPriorityScheduling) {
  // Communication-heavy regime so scheduling matters.
  ClusterConfig cfg = TwoByTwo();
  cfg.inter_node_gbps = 2.0;
  NetworkModel net(cfg);
  const auto stages = SyntheticStages();
  const auto fifo = SimulateIteration(stages, net, CommPolicy::kFifo);
  const auto bs = SimulateIteration(stages, net, CommPolicy::kByteScheduler);
  EXPECT_GT(fifo.exposed_comm_seconds, 0.0);
  EXPECT_LT(bs.exposed_comm_seconds, fifo.exposed_comm_seconds + 1e-9);
}

TEST(AllReduce, AveragesGradientsAcrossRanks) {
  const int world = 3;
  GradientAllReducer reducer(world);
  std::vector<std::unique_ptr<Parameter>> params;
  for (int r = 0; r < world; ++r) {
    auto p = std::make_unique<Parameter>("w", Tensor::Zeros({4}));
    p->grad.Fill_(static_cast<float>(r + 1));  // grads 1, 2, 3 -> mean 2.
    params.push_back(std::move(p));
  }
  std::vector<std::thread> threads;
  std::vector<std::vector<Parameter*>> lists(world);
  for (int r = 0; r < world; ++r) {
    lists[static_cast<size_t>(r)] = {params[static_cast<size_t>(r)].get()};
    threads.emplace_back(
        [&, r] { reducer.AllReduce(r, lists[static_cast<size_t>(r)]); });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int r = 0; r < world; ++r) {
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(params[static_cast<size_t>(r)]->grad.At(i), 2.0F);
    }
  }
  EXPECT_EQ(reducer.TotalBytesReduced(), 4 * 4);
}

// ---- Ring reducer vs sequential reference (the reduction contract) ----
//
// The ring schedule runs over a byte-oriented Transport; both backends — the
// in-process mailbox transport and real localhost TCP sockets — must match the
// sequential reference reducer BITWISE at every world size. Ranks are threads
// here even for the TCP backend (sockets don't care), which keeps the pin
// tests fast; tests/distributed_process_test.cc covers ranks as OS processes.

enum class TransportCase { kInproc, kTcp };

const char* TransportName(TransportCase c) {
  return c == TransportCase::kInproc ? "inproc" : "tcp";
}

// Runs `body(rank, transport)` on `world` rank threads wired by the given
// transport backend.
void RunWorld(TransportCase kind, int world,
              const std::function<void(int, Transport&)>& body) {
  std::vector<std::thread> threads;
  if (kind == TransportCase::kInproc) {
    InprocTransportGroup group(world);
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] { body(r, group.Get(r)); });
    }
    for (auto& t : threads) {
      t.join();
    }
    return;
  }
  char tmpl[] = "/tmp/egeria-ring-test-XXXXXX";
  ASSERT_NE(nullptr, mkdtemp(tmpl));
  const std::string rendezvous = std::string(tmpl) + "/rendezvous";
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      TcpTransportOptions opts;
      opts.rank = r;
      opts.world = world;
      opts.rendezvous_file = rendezvous;
      std::unique_ptr<Transport> transport = MakeTcpTransport(opts);
      body(r, *transport);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  unlink(rendezvous.c_str());
  rmdir(tmpl);
}

// The control-plane primitives behave identically on both backends: Broadcast
// delivers rank 0's bytes everywhere (empty payloads included) and Barrier
// releases no rank before every rank arrived.
TEST(Transport, BroadcastAndBarrierAgreeAcrossBackends) {
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    for (int world : {2, 3}) {
      std::atomic<int> arrived{0};
      RunWorld(kind, world, [&](int rank, Transport& transport) {
        const uint32_t root_word = 0xABCD1234U;
        std::vector<uint8_t> msg;
        ASSERT_TRUE(transport
                        .Broadcast(rank == 0 ? &root_word : nullptr,
                                   rank == 0 ? sizeof(root_word) : 0, &msg)
                        .ok());
        ASSERT_EQ(msg.size(), sizeof(root_word));
        uint32_t got = 0;
        std::memcpy(&got, msg.data(), sizeof(got));
        EXPECT_EQ(got, root_word) << TransportName(kind) << " rank " << rank;
        std::vector<uint8_t> empty;
        ASSERT_TRUE(transport.Broadcast(nullptr, 0, &empty).ok());
        EXPECT_TRUE(empty.empty());
        // Everyone checks in before the barrier; nobody may observe a count
        // below `world` after it.
        arrived.fetch_add(1);
        ASSERT_TRUE(transport.Barrier().ok());
        EXPECT_EQ(arrived.load(), world) << TransportName(kind) << " rank " << rank;
      });
    }
  }
}

// One "replica": a list of parameters with randomly filled gradients.
using ParamSet = std::vector<std::unique_ptr<Parameter>>;

ParamSet MakeParams(const std::vector<int64_t>& sizes, Rng& rng) {
  ParamSet set;
  for (size_t i = 0; i < sizes.size(); ++i) {
    auto p = std::make_unique<Parameter>("p" + std::to_string(i),
                                         Tensor::Zeros({sizes[i]}));
    for (int64_t j = 0; j < sizes[i]; ++j) {
      p->grad.At(j) = rng.NextUniform(-2.0F, 2.0F);
    }
    set.push_back(std::move(p));
  }
  return set;
}

void CopyGrads(const ParamSet& src, ParamSet& dst) {
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    std::memcpy(dst[i]->grad.Data(), src[i]->grad.Data(),
                static_cast<size_t>(src[i]->grad.NumEl()) * sizeof(float));
  }
}

std::vector<Parameter*> Suffix(const ParamSet& set, size_t first) {
  std::vector<Parameter*> out;
  for (size_t i = first; i < set.size(); ++i) {
    out.push_back(set[i].get());
  }
  return out;
}

// Per-round bitwise comparison state for one transport backend's ring run.
struct RingRunStats {
  int64_t payload_rank0 = 0;
  int64_t wire_sum = 0;
};

// Runs the reference star reduce on `ref` and ring RS+AG over `kind` on
// `ring_set` (both restricted to params [first, end)), then asserts every
// rank's every gradient is bitwise-identical across the two reducers.
RingRunStats ReduceBothAndExpectBitwiseEqual(TransportCase kind, int world,
                                             std::vector<ParamSet>& ref,
                                             std::vector<ParamSet>& ring_set,
                                             size_t first,
                                             GradientAllReducer& reference) {
  std::vector<std::vector<Parameter*>> ref_lists(static_cast<size_t>(world));
  std::vector<std::vector<Parameter*>> ring_lists(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    ref_lists[static_cast<size_t>(r)] = Suffix(ref[static_cast<size_t>(r)], first);
    ring_lists[static_cast<size_t>(r)] = Suffix(ring_set[static_cast<size_t>(r)], first);
  }
  {
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        reference.AllReduce(r, ref_lists[static_cast<size_t>(r)]);
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  RingRunStats stats;
  std::mutex stats_mutex;
  RunWorld(kind, world, [&](int rank, Transport& transport) {
    RingAllReducer ring(transport);
    FlatParamView view(ring_lists[static_cast<size_t>(rank)],
                       FlatParamView::Field::kGrad);
    ASSERT_TRUE(ring.ReduceScatterAverage(view, nullptr).ok());
    ASSERT_TRUE(ring.AllGather(view).ok());
    std::lock_guard<std::mutex> lock(stats_mutex);
    stats.wire_sum += ring.TotalWireBytes();
    if (rank == 0) {
      stats.payload_rank0 = ring.TotalBytesReduced();
    }
  });
  for (int r = 0; r < world; ++r) {
    for (size_t p = first; p < ref[0].size(); ++p) {
      const Tensor& a = ref[static_cast<size_t>(r)][p]->grad;
      const Tensor& b = ring_set[static_cast<size_t>(r)][p]->grad;
      EXPECT_EQ(0, std::memcmp(a.Data(), b.Data(),
                               static_cast<size_t>(a.NumEl()) * sizeof(float)))
          << "transport=" << TransportName(kind) << " world=" << world
          << " rank=" << r << " param=" << p;
    }
  }
  return stats;
}

TEST(RingAllReduce, BitwiseMatchesSequentialReference) {
  // Total 29 elements: not divisible by any tested world size, so every run
  // exercises uneven contract chunks — over BOTH transport backends.
  const std::vector<int64_t> sizes = {5, 7, 3, 11, 2, 1};
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    for (int world : {2, 3, 4}) {
      Rng rng(1234 + static_cast<uint64_t>(world));
      std::vector<ParamSet> ref;
      std::vector<ParamSet> ring_set;
      for (int r = 0; r < world; ++r) {
        ref.push_back(MakeParams(sizes, rng));
        ring_set.push_back(MakeParams(sizes, rng));
        CopyGrads(ref.back(), ring_set.back());
      }
      GradientAllReducer reference(world);
      const RingRunStats stats =
          ReduceBothAndExpectBitwiseEqual(kind, world, ref, ring_set, 0, reference);
      EXPECT_EQ(reference.TotalBytesReduced(), stats.payload_rank0);
      // Ring wire traffic is exactly 2(W-1)/W of the payload per link; summed
      // over the W links that is 2(W-1) x payload for reduce-scatter+all-gather.
      const int64_t total = 29;
      EXPECT_EQ(stats.wire_sum,
                2 * (world - 1) * total * static_cast<int64_t>(sizeof(float)));
    }
  }
}

TEST(RingAllReduce, RepartitionMidRunStaysBitwise) {
  // A rank drops newly frozen stages mid-run: round 0 reduces the full list,
  // later rounds reduce shrinking suffixes. The ring must re-chunk the smaller
  // flat space and stay bitwise-identical to the reference at every round, on
  // both transport backends.
  const std::vector<int64_t> sizes = {6, 1, 9, 4, 7, 2};  // total 29
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    for (int world : {2, 3, 4}) {
      Rng rng(77 + static_cast<uint64_t>(world));
      std::vector<ParamSet> ref;
      std::vector<ParamSet> ring_set;
      for (int r = 0; r < world; ++r) {
        ref.push_back(MakeParams(sizes, rng));
        ring_set.push_back(MakeParams(sizes, rng));
        CopyGrads(ref.back(), ring_set.back());
      }
      GradientAllReducer reference(world);
      for (size_t frozen_params : {size_t{0}, size_t{2}, size_t{3}, size_t{5}}) {
        // Fresh local gradients each round, identical across reducers.
        for (int r = 0; r < world; ++r) {
          for (auto& p : ref[static_cast<size_t>(r)]) {
            for (int64_t j = 0; j < p->grad.NumEl(); ++j) {
              p->grad.At(j) = rng.NextUniform(-2.0F, 2.0F);
            }
          }
          CopyGrads(ref[static_cast<size_t>(r)], ring_set[static_cast<size_t>(r)]);
        }
        ReduceBothAndExpectBitwiseEqual(kind, world, ref, ring_set, frozen_params,
                                        reference);
      }
    }
  }
}

TEST(RingAllReduce, TinyPayloadLeavesEmptyChunks) {
  // Fewer elements than ranks: the trailing contract chunks are empty and the
  // ring must still terminate (zero-length frames keep the schedule in
  // lockstep on the wire) and match the reference bitwise.
  const std::vector<int64_t> sizes = {2, 1};
  const int world = 4;
  for (TransportCase kind : {TransportCase::kInproc, TransportCase::kTcp}) {
    Rng rng(9);
    std::vector<ParamSet> ref;
    std::vector<ParamSet> ring_set;
    for (int r = 0; r < world; ++r) {
      ref.push_back(MakeParams(sizes, rng));
      ring_set.push_back(MakeParams(sizes, rng));
      CopyGrads(ref.back(), ring_set.back());
    }
    GradientAllReducer reference(world);
    ReduceBothAndExpectBitwiseEqual(kind, world, ref, ring_set, 0, reference);
  }
}

TEST(RingAllReduce, WorldOneIsIdentity) {
  Rng rng(5);
  ParamSet set = MakeParams({4, 3}, rng);
  ParamSet orig = MakeParams({4, 3}, rng);
  CopyGrads(set, orig);
  InprocTransportGroup group(1);
  RingAllReducer ring(group.Get(0));
  auto list = Suffix(set, 0);
  FlatParamView view(list, FlatParamView::Field::kGrad);
  std::pair<int64_t, int64_t> owned{-1, -1};
  ASSERT_TRUE(ring.ReduceScatterAverage(view, &owned).ok());
  ASSERT_TRUE(ring.AllGather(view).ok());
  EXPECT_EQ(owned.first, 0);
  EXPECT_EQ(owned.second, 7);
  for (size_t p = 0; p < set.size(); ++p) {
    EXPECT_EQ(0, std::memcmp(set[p]->grad.Data(), orig[p]->grad.Data(),
                             static_cast<size_t>(set[p]->grad.NumEl()) * sizeof(float)));
  }
  EXPECT_EQ(ring.TotalWireBytes(), 0);
}

class DistTrainerTest : public ::testing::Test {
 protected:
  static std::unique_ptr<ChainModel> MakeModel() {
    Rng rng(41);
    CifarResNetConfig mcfg;
    mcfg.blocks_per_stage = 1;
    mcfg.base_width = 4;
    mcfg.num_classes = 4;
    return PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng),
                              PartitionConfig{.target_modules = 3});
  }
};

TEST_F(DistTrainerTest, ReplicasStayConsistentAndLearn) {
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 128;
  dcfg.height = 10;
  dcfg.width = 10;
  dcfg.noise_std = 0.4F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 999999;
  vcfg.num_samples = 32;
  SyntheticImageDataset val(vcfg);

  DistTrainConfig cfg;
  cfg.world = 2;
  cfg.epochs = 6;
  cfg.batch_size = 8;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  DistTrainResult r = TrainDataParallel(MakeModel, train, val, cfg);
  EXPECT_TRUE(r.replicas_consistent);
  EXPECT_GT(r.final_display, 0.6);
  EXPECT_EQ(r.bytes_synced, r.bytes_full_model);  // Nothing frozen.
}

TEST_F(DistTrainerTest, EgeriaCutsSynchronizationTraffic) {
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 128;
  dcfg.height = 10;
  dcfg.width = 10;
  dcfg.noise_std = 0.4F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 999999;
  vcfg.num_samples = 32;
  SyntheticImageDataset val(vcfg);

  DistTrainConfig cfg;
  cfg.world = 2;
  cfg.epochs = 20;
  cfg.batch_size = 8;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.enable_egeria = true;
  cfg.egeria.tolerance_coef = 0.4;  // Short run: loosen the slope tolerance.
  cfg.egeria.async_controller = false;
  cfg.egeria.eval_interval_n = 4;
  cfg.egeria.window_w = 3;
  cfg.egeria.enable_cache = false;
  cfg.egeria.ref_update_evals = 2;
  DistTrainResult r = TrainDataParallel(MakeModel, train, val, cfg);
  EXPECT_TRUE(r.replicas_consistent);
  EXPECT_GT(r.final_frontier, 0) << "controller froze nothing";
  EXPECT_LT(r.bytes_synced, r.bytes_full_model);
}

// The ZeRO-1 ring path and the replicated reference path implement the same
// reduction contract and the same compiled SGD arithmetic, so whole training
// runs must agree bitwise — with and without freezing mid-run.
TEST_F(DistTrainerTest, ShardedPathBitwiseMatchesReferencePath) {
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 128;
  dcfg.height = 10;
  dcfg.width = 10;
  dcfg.noise_std = 0.4F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 999999;
  vcfg.num_samples = 32;
  SyntheticImageDataset val(vcfg);

  for (int world : {2, 3}) {
    DistTrainConfig cfg;
    cfg.world = world;
    cfg.epochs = 4;
    cfg.batch_size = 8;
    cfg.task.kind = TaskKind::kClassification;
    cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
    cfg.reducer = DistTrainConfig::Reducer::kSequentialReference;
    DistTrainResult ref = TrainDataParallel(MakeModel, train, val, cfg);
    cfg.reducer = DistTrainConfig::Reducer::kRingSharded;
    DistTrainResult ring = TrainDataParallel(MakeModel, train, val, cfg);
    // Same schedule, real sockets: the TCP backend must not change a single bit.
    cfg.transport = DistTrainConfig::TransportKind::kTcp;
    DistTrainResult tcp = TrainDataParallel(MakeModel, train, val, cfg);

    EXPECT_TRUE(ref.replicas_consistent);
    EXPECT_TRUE(ring.replicas_consistent);
    EXPECT_TRUE(tcp.replicas_consistent);
    EXPECT_EQ(ref.params_hash, ring.params_hash) << "world=" << world;
    EXPECT_EQ(ref.params_hash, tcp.params_hash) << "world=" << world;
    EXPECT_EQ(ref.bytes_synced, ring.bytes_synced);
    EXPECT_EQ(ring.wire_bytes, tcp.wire_bytes);
    EXPECT_EQ(ref.wire_bytes, 0);   // reference path reports no ring traffic
    EXPECT_GT(ring.wire_bytes, 0);
    EXPECT_DOUBLE_EQ(ref.final_score, ring.final_score);
    EXPECT_DOUBLE_EQ(ref.final_score, tcp.final_score);
  }
}

TEST_F(DistTrainerTest, EgeriaShardedRunMatchesReferenceAndShrinksState) {
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 128;
  dcfg.height = 10;
  dcfg.width = 10;
  dcfg.noise_std = 0.4F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 999999;
  vcfg.num_samples = 32;
  SyntheticImageDataset val(vcfg);

  DistTrainConfig cfg;
  cfg.world = 2;
  cfg.epochs = 20;
  cfg.batch_size = 8;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.enable_egeria = true;
  cfg.egeria.tolerance_coef = 0.4;
  cfg.egeria.async_controller = false;
  cfg.egeria.eval_interval_n = 4;
  cfg.egeria.window_w = 3;
  cfg.egeria.enable_cache = false;
  cfg.egeria.ref_update_evals = 2;

  cfg.reducer = DistTrainConfig::Reducer::kRingSharded;
  DistTrainResult ring = TrainDataParallel(MakeModel, train, val, cfg);
  cfg.reducer = DistTrainConfig::Reducer::kSequentialReference;
  DistTrainResult ref = TrainDataParallel(MakeModel, train, val, cfg);
  // The whole freezing run again over real sockets: mid-run freeze + reshard
  // (momentum migration as ring messages) must reproduce the weights bitwise.
  cfg.reducer = DistTrainConfig::Reducer::kRingSharded;
  cfg.transport = DistTrainConfig::TransportKind::kTcp;
  DistTrainResult tcp = TrainDataParallel(MakeModel, train, val, cfg);

  // Identical training: same freeze timeline, same weights, bit for bit.
  EXPECT_TRUE(ring.replicas_consistent);
  EXPECT_GT(ring.final_frontier, 0) << "controller froze nothing";
  EXPECT_EQ(ring.final_frontier, ref.final_frontier);
  EXPECT_EQ(ring.params_hash, ref.params_hash);
  EXPECT_TRUE(tcp.replicas_consistent);
  EXPECT_EQ(tcp.final_frontier, ring.final_frontier);
  EXPECT_EQ(tcp.params_hash, ring.params_hash);
  ASSERT_EQ(tcp.reshard_events.size(), ring.reshard_events.size());
  for (size_t i = 0; i < ring.reshard_events.size(); ++i) {
    EXPECT_EQ(tcp.reshard_events[i].iter, ring.reshard_events[i].iter);
    EXPECT_EQ(tcp.reshard_events[i].frontier, ring.reshard_events[i].frontier);
    EXPECT_EQ(tcp.reshard_events[i].payload_bytes_per_iter,
              ring.reshard_events[i].payload_bytes_per_iter);
  }

  // The freeze->reshard protocol: the initial partition plus one event per
  // frontier move; every move strictly shrinks the active space, the ring
  // payload, and the per-rank optimizer state (Fig. 10's scaling argument).
  ASSERT_GE(ring.reshard_events.size(), 2U) << "no reshard after freezing";
  EXPECT_EQ(ring.reshard_events[0].frontier, 0);
  for (size_t i = 1; i < ring.reshard_events.size(); ++i) {
    const DistReshardEvent& prev = ring.reshard_events[i - 1];
    const DistReshardEvent& ev = ring.reshard_events[i];
    EXPECT_GT(ev.frontier, prev.frontier);
    EXPECT_LT(ev.active_elems, prev.active_elems);
    EXPECT_LT(ev.payload_bytes_per_iter, prev.payload_bytes_per_iter);
    EXPECT_LT(ev.opt_state_bytes_per_rank, prev.opt_state_bytes_per_rank);
  }
  EXPECT_EQ(ref.reshard_events.size(), 0U);
  EXPECT_LT(ring.bytes_synced, ring.bytes_full_model);

  // ZeRO-1 memory claim: each rank holds ~1/world of the active velocity.
  const DistReshardEvent& first = ring.reshard_events[0];
  EXPECT_LE(first.opt_state_bytes_per_rank,
            first.active_elems * static_cast<int64_t>(sizeof(float)) / cfg.world +
                static_cast<int64_t>(sizeof(float)));
}

// ---- Checkpoint/restore: the bitwise-resume contract at harness level ----

std::string MakeCkptDir(const std::string& label) {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / ("egeria-" + label + "-XXXXXX"))
          .string();
  EXPECT_NE(nullptr, mkdtemp(tmpl.data()));
  return tmpl;
}

// A world that dies mid-run (here: a clean lockstep stop standing in for the
// crash) and restarts against the same checkpoint directory must finish with
// final weights bit-identical to the uninterrupted run — including freeze
// decisions and shard repartitions that happen AFTER the resume point.
TEST(DistResume, SameWorldResumeBitwiseMatchesUninterrupted) {
  DistWorkload w = MakeDistWorkload("tiny");
  w.cfg.world = 3;
  w.cfg.enable_egeria = true;
  const DistTrainResult ref = TrainDataParallel(w.make_model, *w.train, *w.val, w.cfg);
  ASSERT_TRUE(ref.replicas_consistent);
  ASSERT_GT(ref.final_frontier, 0) << "workload no longer freezes; test is hollow";

  const std::string dir = MakeCkptDir("dresume");
  DistWorkload crash = MakeDistWorkload("tiny");
  crash.cfg.world = 3;
  crash.cfg.enable_egeria = true;
  crash.cfg.ckpt.dir = dir;
  crash.cfg.ckpt.interval_iters = 7;
  crash.cfg.stop_after_iters = 37;
  const DistTrainResult stopped =
      TrainDataParallel(crash.make_model, *crash.train, *crash.val, crash.cfg);
  EXPECT_TRUE(stopped.stopped_early);
  ASSERT_LT(stopped.iterations, ref.iterations);

  DistWorkload resume = MakeDistWorkload("tiny");
  resume.cfg.world = 3;
  resume.cfg.enable_egeria = true;
  resume.cfg.ckpt.dir = dir;
  resume.cfg.ckpt.interval_iters = 7;
  const DistTrainResult resumed =
      TrainDataParallel(resume.make_model, *resume.train, *resume.val, resume.cfg);
  EXPECT_EQ(resumed.resumed_from_iter, 37);
  EXPECT_TRUE(resumed.replicas_consistent);
  EXPECT_EQ(resumed.final_frontier, ref.final_frontier);
  EXPECT_EQ(resumed.params_hash, ref.params_hash)
      << "resume diverged from the uninterrupted run";
  EXPECT_EQ(resumed.iterations, ref.iterations);
  std::filesystem::remove_all(dir);
}

// Elastic restart: a world-4 checkpoint resumed at world 3. The saved momentum
// shards are re-folded through the reduction-contract partition, so any two
// resumes of the same checkpoint at the new world size — inproc threads or
// real TCP sockets — must agree bitwise.
TEST(DistResume, ElasticResumeWorld4To3AgreesAcrossTransports) {
  const std::string dir_a = MakeCkptDir("elasticA");
  const std::string dir_b = MakeCkptDir("elasticB");

  DistWorkload stage = MakeDistWorkload("tiny");
  stage.cfg.world = 4;
  stage.cfg.enable_egeria = true;
  stage.cfg.ckpt.dir = dir_a;
  stage.cfg.ckpt.interval_iters = 6;
  stage.cfg.stop_after_iters = 24;
  const DistTrainResult staged =
      TrainDataParallel(stage.make_model, *stage.train, *stage.val, stage.cfg);
  ASSERT_TRUE(staged.stopped_early);
  // Clone the checkpoint before any resume appends newer steps to it.
  std::filesystem::copy(dir_a, dir_b, std::filesystem::copy_options::recursive);
  const auto latest = FindLatestCheckpoint(dir_b);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iter, 24);
  EXPECT_EQ(latest->world, 4);  // Written by world 4, about to resume at 3.

  auto resume_at_3 = [](const std::string& dir,
                        DistTrainConfig::TransportKind transport) {
    DistWorkload w = MakeDistWorkload("tiny");
    w.cfg.world = 3;
    w.cfg.enable_egeria = true;
    w.cfg.transport = transport;
    w.cfg.ckpt.dir = dir;
    w.cfg.ckpt.interval_iters = 6;
    return TrainDataParallel(w.make_model, *w.train, *w.val, w.cfg);
  };
  const DistTrainResult inproc =
      resume_at_3(dir_a, DistTrainConfig::TransportKind::kInproc);
  const DistTrainResult tcp = resume_at_3(dir_b, DistTrainConfig::TransportKind::kTcp);

  EXPECT_EQ(inproc.resumed_from_iter, 24);
  EXPECT_EQ(tcp.resumed_from_iter, 24);
  EXPECT_TRUE(inproc.replicas_consistent);
  EXPECT_TRUE(tcp.replicas_consistent);
  EXPECT_EQ(inproc.params_hash, tcp.params_hash)
      << "elastic resume is transport-dependent";
  EXPECT_EQ(inproc.final_frontier, tcp.final_frontier);
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

}  // namespace
}  // namespace egeria
