// Distributed substrate: network model, communication scheduler properties
// (ByteScheduler <= FIFO; Egeria reduces both compute and traffic), real all-reduce
// correctness, and the data-parallel harness.
#include <gtest/gtest.h>

#include <thread>

#include "src/core/module_partitioner.h"
#include "src/data/synthetic_image.h"
#include "src/distributed/allreduce.h"
#include "src/distributed/comm_scheduler.h"
#include "src/distributed/dist_trainer.h"
#include "src/distributed/network_model.h"
#include "src/models/resnet.h"
#include "src/optim/lr_scheduler.h"

namespace egeria {
namespace {

ClusterConfig TwoByTwo() {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 2;
  return cfg;
}

TEST(NetworkModel, ZeroForSingleGpuOrNoBytes) {
  ClusterConfig single;
  single.num_nodes = 1;
  single.gpus_per_node = 1;
  EXPECT_DOUBLE_EQ(NetworkModel(single).AllReduceSeconds(1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(NetworkModel(TwoByTwo()).AllReduceSeconds(0), 0.0);
}

TEST(NetworkModel, MonotoneInBytesAndNodes) {
  NetworkModel net(TwoByTwo());
  EXPECT_LT(net.AllReduceSeconds(1 << 20), net.AllReduceSeconds(1 << 22));
  ClusterConfig wider = TwoByTwo();
  wider.num_nodes = 5;
  EXPECT_LT(net.AllReduceSeconds(1 << 22),
            NetworkModel(wider).AllReduceSeconds(1 << 22));
}

std::vector<StageCost> SyntheticStages() {
  // Front-light, deep-heavy (CNN-like): 6 stages.
  std::vector<StageCost> stages;
  for (int i = 0; i < 6; ++i) {
    StageCost s;
    s.fp_seconds = 0.002 + 0.001 * i;
    s.bp_seconds = 2.0 * s.fp_seconds;
    s.grad_bytes = int64_t{200000} * (i + 1);
    stages.push_back(s);
  }
  return stages;
}

TEST(CommScheduler, ByteSchedulerNeverSlowerThanFifo) {
  NetworkModel net(TwoByTwo());
  const auto stages = SyntheticStages();
  const auto fifo = SimulateIteration(stages, net, CommPolicy::kFifo);
  const auto bs = SimulateIteration(stages, net, CommPolicy::kByteScheduler);
  EXPECT_LE(bs.iteration_seconds, fifo.iteration_seconds + 1e-9);
  EXPECT_GT(fifo.iteration_seconds, 0.0);
}

TEST(CommScheduler, FreezingReducesIterationTimeAndTraffic) {
  NetworkModel net(TwoByTwo());
  const auto stages = SyntheticStages();
  for (CommPolicy policy : {CommPolicy::kFifo, CommPolicy::kByteScheduler}) {
    const auto full = SimulateIteration(stages, net, policy, 0);
    const auto frozen2 = SimulateIteration(stages, net, policy, 2);
    const auto frozen2_cached =
        SimulateIteration(stages, net, policy, 2, /*prefix_fp_cached=*/true);
    EXPECT_LT(frozen2.iteration_seconds, full.iteration_seconds);
    EXPECT_LT(frozen2.comm_seconds, full.comm_seconds);
    EXPECT_LE(frozen2_cached.iteration_seconds, frozen2.iteration_seconds + 1e-12);
  }
}

TEST(CommScheduler, NoCommMeansComputeBound) {
  ClusterConfig single;
  single.num_nodes = 1;
  single.gpus_per_node = 1;
  NetworkModel net(single);
  const auto stages = SyntheticStages();
  const auto t = SimulateIteration(stages, net, CommPolicy::kFifo);
  double compute = 0.0;
  for (const auto& s : stages) {
    compute += s.fp_seconds + s.bp_seconds;
  }
  EXPECT_NEAR(t.iteration_seconds, compute, 1e-9);
  EXPECT_DOUBLE_EQ(t.exposed_comm_seconds, 0.0);
}

TEST(CommScheduler, ExposedCommShrinksWithPriorityScheduling) {
  // Communication-heavy regime so scheduling matters.
  ClusterConfig cfg = TwoByTwo();
  cfg.inter_node_gbps = 2.0;
  NetworkModel net(cfg);
  const auto stages = SyntheticStages();
  const auto fifo = SimulateIteration(stages, net, CommPolicy::kFifo);
  const auto bs = SimulateIteration(stages, net, CommPolicy::kByteScheduler);
  EXPECT_GT(fifo.exposed_comm_seconds, 0.0);
  EXPECT_LT(bs.exposed_comm_seconds, fifo.exposed_comm_seconds + 1e-9);
}

TEST(AllReduce, AveragesGradientsAcrossRanks) {
  const int world = 3;
  GradientAllReducer reducer(world);
  std::vector<std::unique_ptr<Parameter>> params;
  for (int r = 0; r < world; ++r) {
    auto p = std::make_unique<Parameter>("w", Tensor::Zeros({4}));
    p->grad.Fill_(static_cast<float>(r + 1));  // grads 1, 2, 3 -> mean 2.
    params.push_back(std::move(p));
  }
  std::vector<std::thread> threads;
  std::vector<std::vector<Parameter*>> lists(world);
  for (int r = 0; r < world; ++r) {
    lists[static_cast<size_t>(r)] = {params[static_cast<size_t>(r)].get()};
    threads.emplace_back(
        [&, r] { reducer.AllReduce(r, lists[static_cast<size_t>(r)]); });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int r = 0; r < world; ++r) {
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(params[static_cast<size_t>(r)]->grad.At(i), 2.0F);
    }
  }
  EXPECT_EQ(reducer.TotalBytesReduced(), 4 * 4);
}

class DistTrainerTest : public ::testing::Test {
 protected:
  static std::unique_ptr<ChainModel> MakeModel() {
    Rng rng(41);
    CifarResNetConfig mcfg;
    mcfg.blocks_per_stage = 1;
    mcfg.base_width = 4;
    mcfg.num_classes = 4;
    return PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng),
                              PartitionConfig{.target_modules = 3});
  }
};

TEST_F(DistTrainerTest, ReplicasStayConsistentAndLearn) {
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 128;
  dcfg.height = 10;
  dcfg.width = 10;
  dcfg.noise_std = 0.4F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 999999;
  vcfg.num_samples = 32;
  SyntheticImageDataset val(vcfg);

  DistTrainConfig cfg;
  cfg.world = 2;
  cfg.epochs = 6;
  cfg.batch_size = 8;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  DistTrainResult r = TrainDataParallel(MakeModel, train, val, cfg);
  EXPECT_TRUE(r.replicas_consistent);
  EXPECT_GT(r.final_display, 0.6);
  EXPECT_EQ(r.bytes_synced, r.bytes_full_model);  // Nothing frozen.
}

TEST_F(DistTrainerTest, EgeriaCutsSynchronizationTraffic) {
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 128;
  dcfg.height = 10;
  dcfg.width = 10;
  dcfg.noise_std = 0.4F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 999999;
  vcfg.num_samples = 32;
  SyntheticImageDataset val(vcfg);

  DistTrainConfig cfg;
  cfg.world = 2;
  cfg.epochs = 20;
  cfg.batch_size = 8;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.enable_egeria = true;
  cfg.egeria.tolerance_coef = 0.4;  // Short run: loosen the slope tolerance.
  cfg.egeria.async_controller = false;
  cfg.egeria.eval_interval_n = 4;
  cfg.egeria.window_w = 3;
  cfg.egeria.enable_cache = false;
  cfg.egeria.ref_update_evals = 2;
  DistTrainResult r = TrainDataParallel(MakeModel, train, val, cfg);
  EXPECT_TRUE(r.replicas_consistent);
  EXPECT_GT(r.final_frontier, 0) << "controller froze nothing";
  EXPECT_LT(r.bytes_synced, r.bytes_full_model);
}

}  // namespace
}  // namespace egeria
