// End-to-end Trainer integration: convergence, Egeria freezing without accuracy
// loss, cache-consistency (training with the activation cache is numerically
// identical to training without it), baselines, and the bootstrap gate.
#include <gtest/gtest.h>

#include "src/baselines/freeze_baselines.h"
#include "src/core/module_partitioner.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_image.h"
#include "src/models/resnet.h"
#include "src/optim/lr_scheduler.h"

namespace egeria {
namespace {

struct Workload {
  std::unique_ptr<StageChainModel> model;
  std::unique_ptr<SyntheticImageDataset> train;
  std::unique_ptr<SyntheticImageDataset> val;
};

Workload MakeWorkload(uint64_t seed = 3, int stages = 4) {
  Workload w;
  Rng rng(seed);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 1;
  mcfg.base_width = 8;
  mcfg.num_classes = 4;
  w.model = PartitionIntoChain("resnet", BuildCifarResNetBlocks(mcfg, rng),
                               PartitionConfig{.target_modules = stages});
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 256;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise_std = 0.5F;
  w.train = std::make_unique<SyntheticImageDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 64;
  w.val = std::make_unique<SyntheticImageDataset>(vcfg);
  return w;
}

TrainConfig BaseConfig(int epochs = 6) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.val_batches = 4;
  return cfg;
}

TEST(TrainerIntegration, VanillaTrainingConverges) {
  Workload w = MakeWorkload();
  TrainConfig cfg = BaseConfig();
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  TrainResult r = trainer.Run();
  EXPECT_GT(r.final_metric.display, 0.85);
  EXPECT_EQ(r.iterations, 6 * (256 / 16));
  EXPECT_EQ(r.final_frontier, 0);
  EXPECT_TRUE(r.freeze_events.empty());
}

TEST(TrainerIntegration, TargetAccuracyYieldsTta) {
  Workload w = MakeWorkload();
  TrainConfig cfg = BaseConfig();
  cfg.target_score = 0.6;
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  TrainResult r = trainer.Run();
  EXPECT_TRUE(r.reached_target);
  EXPECT_GT(r.tta_seconds, 0.0);
  EXPECT_LE(r.tta_seconds, r.total_train_seconds + 1e-9);
}

TEST(TrainerIntegration, EgeriaFreezesWithoutAccuracyLoss) {
  Workload wa = MakeWorkload(5);
  TrainConfig base = BaseConfig(8);
  Trainer vanilla(*wa.model, *wa.train, *wa.val, base);
  TrainResult rv = vanilla.Run();

  Workload wb = MakeWorkload(5);  // Same seed -> identical init.
  TrainConfig cfg = BaseConfig(8);
  cfg.enable_egeria = true;
  cfg.egeria.async_controller = false;  // Deterministic.
  cfg.egeria.eval_interval_n = 8;
  cfg.egeria.window_w = 3;
  cfg.egeria.enable_cache = true;
  cfg.egeria.max_bootstrap_iters = 16;
  cfg.egeria.ref_update_evals = 2;  // Frequent refresh smooths the plasticity curve.
  Trainer egeria(*wb.model, *wb.train, *wb.val, cfg);
  TrainResult re = egeria.Run();

  EXPECT_GT(re.final_frontier, 0) << "Egeria froze nothing";
  EXPECT_GT(re.evals_submitted, 0);
  EXPECT_GE(re.bootstrap_end_iter, 0);
  // Accuracy preserved within noise (the paper's headline property).
  EXPECT_GT(re.final_metric.display, rv.final_metric.display - 0.06);
}

TEST(TrainerIntegration, CacheDoesNotChangeTrainingNumerics) {
  // With a deterministic freeze point, training with the activation cache must be
  // numerically identical to training without it: cached activations equal the
  // recomputed ones because the frozen prefix is input-deterministic.
  auto run = [](bool enable_cache) {
    Workload w = MakeWorkload(7);
    TrainConfig cfg = BaseConfig(5);
    cfg.enable_egeria = true;
    cfg.egeria.async_controller = false;
    cfg.egeria.eval_interval_n = 1 << 20;  // No plasticity evals.
    cfg.egeria.enable_cache = enable_cache;
    StaticFreezeHook hook(/*epoch=*/1, /*stage=*/1);
    Trainer trainer(*w.model, *w.train, *w.val, cfg);
    trainer.SetFreezeHook(&hook);
    TrainResult r = trainer.Run();
    std::vector<float> weights;
    for (Parameter* p : w.model->ParamsFrom(0)) {
      weights.insert(weights.end(), p->value.Data(), p->value.Data() + p->value.NumEl());
    }
    return std::make_pair(r, weights);
  };
  auto [r_cache, w_cache] = run(true);
  auto [r_plain, w_plain] = run(false);
  EXPECT_GT(r_cache.fp_skip_count, 0) << "cache never hit";
  ASSERT_EQ(w_cache.size(), w_plain.size());
  for (size_t i = 0; i < w_cache.size(); ++i) {
    ASSERT_EQ(w_cache[i], w_plain[i]) << "weight divergence at " << i;
  }
}

TEST(TrainerIntegration, Fp16FrozenPrefixTrainsToComparableAccuracy) {
  // Frozen-prefix forwards at fp16 (frozen_prefix_precision) must not derail
  // training: same static freeze point as the fp32 run, accuracy within noise.
  auto run = [](Precision prefix_precision) {
    Workload w = MakeWorkload(9);
    TrainConfig cfg = BaseConfig(5);
    cfg.enable_egeria = true;
    cfg.egeria.async_controller = false;
    cfg.egeria.eval_interval_n = 1 << 20;  // No plasticity evals.
    cfg.egeria.enable_cache = false;       // Exercise the prefix forward itself.
    cfg.egeria.frozen_prefix_precision = prefix_precision;
    StaticFreezeHook hook(/*epoch=*/1, /*stage=*/1);
    Trainer trainer(*w.model, *w.train, *w.val, cfg);
    trainer.SetFreezeHook(&hook);
    return trainer.Run();
  };
  TrainResult fp32 = run(Precision::kFloat32);
  TrainResult fp16 = run(Precision::kFloat16);
  EXPECT_GT(fp16.final_frontier, 0);
  EXPECT_GT(fp16.final_metric.display, fp32.final_metric.display - 0.08);
}

TEST(TrainerIntegration, UnfreezeOnLrDrop) {
  Workload w = MakeWorkload(9);
  TrainConfig cfg = BaseConfig(12);
  const int64_t ipe = 256 / 16;
  // The 20x drop comes late (epoch 10) so the first freeze (typically ~epoch 7 under
  // this schedule) precedes it.
  cfg.lr_schedule = std::make_shared<StepDecayLr>(
      0.05F, 0.05F, std::vector<int64_t>{10 * ipe});
  cfg.enable_egeria = true;
  cfg.egeria.async_controller = false;
  cfg.egeria.eval_interval_n = 8;
  cfg.egeria.window_w = 3;
  cfg.egeria.enable_cache = false;
  cfg.egeria.max_bootstrap_iters = 16;
  cfg.egeria.ref_update_evals = 2;
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  TrainResult r = trainer.Run();
  bool saw_freeze = false;
  bool saw_unfreeze_after_freeze = false;
  for (const auto& e : r.freeze_events) {
    if (!e.unfreeze) {
      saw_freeze = true;
    } else if (saw_freeze) {
      saw_unfreeze_after_freeze = true;
      EXPECT_GE(e.iter, 10 * ipe);
    }
  }
  EXPECT_TRUE(saw_freeze);
  EXPECT_TRUE(saw_unfreeze_after_freeze);
}

TEST(TrainerIntegration, StaticFreezeHookFreezesAtEpoch) {
  Workload w = MakeWorkload(11);
  TrainConfig cfg = BaseConfig(3);
  StaticFreezeHook hook(1, 0);
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  trainer.SetFreezeHook(&hook);
  TrainResult r = trainer.Run();
  ASSERT_EQ(r.freeze_events.size(), 1u);
  EXPECT_EQ(r.freeze_events[0].frontier_after, 1);
  EXPECT_EQ(r.final_frontier, 1);
}

TEST(TrainerIntegration, FrontierObserverFiresAndFrozenStateIsReleased) {
  Workload w = MakeWorkload(11);
  TrainConfig cfg = BaseConfig(3);
  StaticFreezeHook hook(1, 0);
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  trainer.SetFreezeHook(&hook);
  struct Move {
    int from;
    int to;
    int64_t iter;
  };
  std::vector<Move> moves;
  trainer.SetFrontierObserver(
      [&](int from, int to, int64_t iter) { moves.push_back({from, to, iter}); });
  TrainResult r = trainer.Run();
  ASSERT_EQ(moves.size(), 1U);
  EXPECT_EQ(moves[0].from, 0);
  EXPECT_EQ(moves[0].to, 1);
  EXPECT_EQ(r.final_frontier, 1);
  // The frozen prefix's momentum was released: resident optimizer state covers
  // exactly the still-active parameters (every active param has stepped).
  int64_t active_bytes = 0;
  for (Parameter* p : w.model->ParamsFrom(1)) {
    active_bytes += p->value.NumEl() * static_cast<int64_t>(sizeof(float));
  }
  EXPECT_EQ(trainer.OptimizerStateBytes(), active_bytes);
  EXPECT_LT(active_bytes,
            w.model->TotalParamCount() * static_cast<int64_t>(sizeof(float)));
}

TEST(TrainerIntegration, AutoFreezeHookFreezesOnGradNormDecay) {
  Workload w = MakeWorkload(13);
  TrainConfig cfg = BaseConfig(8);
  AutoFreezeConfig acfg;
  acfg.eval_interval = 4;
  acfg.window = 3;
  acfg.threshold_frac = 0.9;  // Permissive so it fires within the test budget.
  AutoFreezeHook hook(acfg);
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  trainer.SetFreezeHook(&hook);
  TrainResult r = trainer.Run();
  EXPECT_GT(r.final_frontier, 0);
}

TEST(TrainerIntegration, FreezeOutFollowsSchedule) {
  Workload w = MakeWorkload(15);
  TrainConfig cfg = BaseConfig(6);
  FreezeOutConfig fcfg;
  fcfg.t_end_frac = 0.5;
  fcfg.cubic = false;
  FreezeOutHook hook(fcfg);
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  trainer.SetFreezeHook(&hook);
  TrainResult r = trainer.Run();
  // Linear schedule over 3 freezable modules ending at 50% of training.
  EXPECT_EQ(r.final_frontier, 3);
  EXPECT_GE(r.freeze_events.size(), 3u);
  const int64_t total = r.iterations;
  EXPECT_LE(r.freeze_events.back().iter, total / 2 + 2);
}

TEST(TrainerIntegration, AsyncControllerMatchesSyncOutcomeApproximately) {
  // Async mode is nondeterministic in timing but must still converge and freeze.
  Workload w = MakeWorkload(17);
  TrainConfig cfg = BaseConfig(8);
  cfg.enable_egeria = true;
  cfg.egeria.async_controller = true;
  cfg.egeria.eval_interval_n = 8;
  cfg.egeria.window_w = 3;
  cfg.egeria.max_bootstrap_iters = 16;
  cfg.egeria.ref_update_evals = 2;
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  TrainResult r = trainer.Run();
  EXPECT_GT(r.final_metric.display, 0.8);
  EXPECT_GT(r.evals_submitted, 0);
}

}  // namespace
}  // namespace egeria
