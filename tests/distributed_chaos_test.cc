// Seeded chaos matrix over the multi-process runtime: each seed derives one
// deterministic fault (kind, target rank, iteration) via FaultPlan::FromSeed,
// the world runs under SpawnWorldWithRecovery, and EVERY scenario must end in
// one of the two acceptable states the failure model promises:
//
//   - the run completes (transient faults like delay), or
//   - the world aborts cleanly, auto-restarts from the latest complete
//     checkpoint, and completes,
//
// with final weights on every rank BITWISE-equal to the uninterrupted
// in-process sequential reference of the same workload, no hang past the
// heartbeat/launcher bounds, and no torn checkpoint (every committed MANIFEST
// verifies). The seed scan is pinned to cover all six fault kinds across
// worlds 2..4 with at least eight seeds.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/distributed/dist_trainer.h"
#include "src/distributed/dist_workload.h"
#include "src/distributed/process_launcher.h"
#include "src/distributed/transport/fault_injection.h"

namespace egeria {
namespace {

constexpr int kEpochs = 3;  // tiny @ world 4 still runs 12 iters > max fault iter

std::string WorkerBinary() {
  if (const char* env = std::getenv("EGERIA_WORKER_BIN")) {
    return env;
  }
#ifdef EGERIA_WORKER_BIN
  return EGERIA_WORKER_BIN;
#else
  return "./egeria_worker";
#endif
}

std::string MakeLogDir(const std::string& label) {
  mkdir("dist_logs", 0755);
  std::string tmpl = "dist_logs/" + label + "-XXXXXX";
  EXPECT_NE(nullptr, mkdtemp(tmpl.data()));
  return tmpl;
}

uint64_t ParseHash(const std::map<std::string, std::string>& kv) {
  const auto it = kv.find("params_hash");
  return it == kv.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 16);
}

// Uninterrupted single-process ground truth, cached per world size (the
// sequential rank-0 reducer — the repo's bitwise reference).
uint64_t ReferenceHash(int world) {
  static std::map<int, uint64_t> cache;
  const auto it = cache.find(world);
  if (it != cache.end()) {
    return it->second;
  }
  DistWorkload w = MakeDistWorkload("tiny");
  w.cfg.world = world;
  w.cfg.epochs = kEpochs;
  w.cfg.reducer = DistTrainConfig::Reducer::kSequentialReference;
  const DistTrainResult ref =
      TrainDataParallel(w.make_model, *w.train, *w.val, w.cfg);
  EXPECT_TRUE(ref.replicas_consistent);
  cache[world] = ref.params_hash;
  return ref.params_hash;
}

// The fault a seed injects into a world (the targeted rank's derived event).
const FaultEvent* SeedFault(uint64_t seed, int world, FaultPlan* storage) {
  for (int r = 0; r < world; ++r) {
    *storage = FaultPlan::FromSeed(seed, world, r);
    if (!storage->events.empty()) {
      return &storage->events[0];
    }
  }
  return nullptr;
}

// No-torn-checkpoint invariant: every step directory holding a committed
// MANIFEST must parse and have all its files verify. (Manifest-less step dirs
// are fine — they are invisible to resume by construction.)
void ScanForTornCheckpoints(const std::string& ckpt_dir) {
  if (!std::filesystem::exists(ckpt_dir)) {
    return;  // the fault fired before the first checkpoint — nothing to tear
  }
  for (const auto& entry : std::filesystem::directory_iterator(ckpt_dir)) {
    if (!entry.is_directory()) {
      continue;
    }
    const std::string step_dir = entry.path().string();
    if (!std::filesystem::exists(entry.path() / "MANIFEST")) {
      continue;
    }
    const auto m = ReadManifest(step_dir);
    ASSERT_TRUE(m.has_value()) << "committed MANIFEST unreadable: " << step_dir;
    std::string error;
    EXPECT_TRUE(VerifyCheckpointFiles(*m, &error))
        << "torn checkpoint at " << step_dir << ": " << error;
  }
}

TEST(DistributedChaos, SeededFaultMatrixConvergesBitwiseWithNoTornCheckpoints) {
  // Select the matrix: walk seeds until every fault kind appeared and at
  // least 8 seeds are queued. Pure derivation — no processes yet — so the
  // pinned scan stays deterministic and cheap.
  std::vector<uint64_t> seeds;
  std::set<std::string> kinds_covered;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const int world = 2 + static_cast<int>(seed % 3);
    FaultPlan storage;
    const FaultEvent* ev = SeedFault(seed, world, &storage);
    ASSERT_NE(ev, nullptr) << "seed " << seed << " derived no fault";
    const bool new_kind = kinds_covered.insert(FaultKindName(ev->kind)).second;
    if (new_kind || seeds.size() < 8) {
      seeds.push_back(seed);
    }
    if (kinds_covered.size() == 6 && seeds.size() >= 8) {
      break;
    }
  }
  ASSERT_EQ(kinds_covered.size(), 6U)
      << "seeds 1..50 no longer cover all fault kinds";
  ASSERT_GE(seeds.size(), 8U);

  for (const uint64_t seed : seeds) {
    const int world = 2 + static_cast<int>(seed % 3);
    FaultPlan storage;
    const FaultEvent* ev = SeedFault(seed, world, &storage);
    ASSERT_NE(ev, nullptr);
    SCOPED_TRACE("seed " + std::to_string(seed) + " world " +
                 std::to_string(world) + " fault " + FaultKindName(ev->kind) +
                 ":" + std::to_string(ev->iter));

    SpawnOptions options;
    options.worker_binary = WorkerBinary();
    options.world = world;
    options.log_dir = MakeLogDir("chaos-s" + std::to_string(seed));
    const std::string ckpt_dir = options.log_dir + "/ckpt";
    options.common_args = {"--workload=tiny",
                           "--epochs=" + std::to_string(kEpochs),
                           "--ckpt-dir=" + ckpt_dir,
                           "--ckpt-interval=3",
                           "--hb-interval=1",
                           "--io-timeout=20"};
    // The fault spec rides in per_rank_args (every rank derives its own plan
    // from the shared seed) so restarts drop it and the fault fires once.
    options.per_rank_args.assign(
        static_cast<size_t>(world),
        {"--fault=seed:" + std::to_string(seed)});
    options.timeout_s = 60.0;
    RecoverySpec recovery;
    recovery.max_restarts = 2;
    recovery.ckpt_dir = ckpt_dir;
    recovery.backoff_initial_s = 0.1;  // keep the matrix fast
    const SpawnResult run = SpawnWorldWithRecovery(options, recovery);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.final_world, world);

    // delay is transient (the run must survive it in one attempt); every
    // fatal kind must actually have fired and forced at least one restart.
    if (ev->kind == FaultKind::kDelay) {
      EXPECT_EQ(run.attempts, 1) << "transient fault restarted the world";
    } else {
      EXPECT_GE(run.attempts, 2) << "fault never fired";
    }

    // Bitwise pin: every rank of every scenario equals the uninterrupted
    // single-process reference.
    const uint64_t ref_hash = ReferenceHash(world);
    ASSERT_EQ(run.rank_results.size(), static_cast<size_t>(world));
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(ParseHash(run.rank_results[static_cast<size_t>(r)]), ref_hash)
          << "rank " << r << " diverged from the uninterrupted reference";
    }
    ScanForTornCheckpoints(ckpt_dir);
    if (!HasFailure()) {
      std::filesystem::remove_all(options.log_dir);
    }
  }
}

// Elastic self-healing: shrink_world_on_restart relaunches a crashed world-3
// run at world 2 (one machine "permanently lost"), resuming from the world-3
// checkpoint via shard re-folding, and reports the shrunken final_world. The
// result must match the in-process world-2 resume of the same checkpoint.
TEST(DistributedChaos, ShrinkOnRestartResumesAtSmallerWorldBitwise) {
  const int world = 3;
  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = world;
  options.log_dir = MakeLogDir("shrink");
  const std::string ckpt_dir = options.log_dir + "/ckpt";
  const std::string ckpt_ref = options.log_dir + "/ckpt_ref";
  options.common_args = {"--workload=tiny", "--epochs=" + std::to_string(kEpochs),
                         "--ckpt-dir=" + ckpt_dir, "--ckpt-interval=4",
                         "--hb-interval=1", "--io-timeout=20"};
  // Rank 1 crashes at iteration 6: past the iteration-4 checkpoint, so the
  // shrunken restart resumes (not recomputes) with re-folded shards.
  options.per_rank_args = {{}, {"--fault=exit:6"}, {}};
  options.timeout_s = 60.0;
  RecoverySpec recovery;
  recovery.max_restarts = 1;
  recovery.ckpt_dir = ckpt_dir;
  recovery.shrink_world_on_restart = true;
  recovery.backoff_initial_s = 0.1;
  const SpawnResult run = SpawnWorldWithRecovery(options, recovery);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.attempts, 2) << "fault injection never fired";
  EXPECT_EQ(run.final_world, world - 1);
  ASSERT_EQ(run.rank_results.size(), static_cast<size_t>(world - 1));

  // In-process world-2 elastic reference: re-stage the same pre-crash
  // checkpoint deterministically (world-3 run stopped at the checkpoint
  // iteration), then resume it at world 2.
  DistWorkload stage = MakeDistWorkload("tiny");
  stage.cfg.world = world;
  stage.cfg.epochs = kEpochs;
  stage.cfg.ckpt.dir = ckpt_ref;
  stage.cfg.ckpt.interval_iters = 4;
  stage.cfg.stop_after_iters = 4;
  const DistTrainResult staged =
      TrainDataParallel(stage.make_model, *stage.train, *stage.val, stage.cfg);
  ASSERT_TRUE(staged.stopped_early);
  DistWorkload ref = MakeDistWorkload("tiny");
  ref.cfg.world = world - 1;
  ref.cfg.epochs = kEpochs;
  ref.cfg.ckpt.dir = ckpt_ref;
  ref.cfg.ckpt.interval_iters = 4;
  const DistTrainResult inproc =
      TrainDataParallel(ref.make_model, *ref.train, *ref.val, ref.cfg);
  ASSERT_EQ(inproc.resumed_from_iter, 4);
  ASSERT_TRUE(inproc.replicas_consistent);

  const uint64_t hash0 = ParseHash(run.rank_results[0]);
  ASSERT_NE(hash0, 0U);
  for (int r = 0; r < world - 1; ++r) {
    EXPECT_EQ(ParseHash(run.rank_results[static_cast<size_t>(r)]), hash0);
  }
  EXPECT_EQ(hash0, inproc.params_hash)
      << "shrunken restart diverged from the in-process elastic reference";
  if (!HasFailure()) {
    std::filesystem::remove_all(options.log_dir);
  }
}

// Async-save crash window: with background checkpoint writes, the capture at
// iteration N commits at the START of iteration N+1 (after the all-ranks
// status reduction). A rank killed exactly at N+1 dies BETWEEN capture and
// commit — the step directory exists but holds no MANIFEST, so the restart
// must treat the run as checkpoint-less (resume from scratch), never consume
// the half-committed step, and still converge bitwise to the reference.
TEST(DistributedChaos, CrashBetweenAsyncCaptureAndCommitLeavesStepInvisible) {
  const int world = 2;
  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = world;
  options.log_dir = MakeLogDir("async-crash");
  const std::string ckpt_dir = options.log_dir + "/ckpt";
  options.common_args = {"--workload=tiny", "--epochs=" + std::to_string(kEpochs),
                         "--ckpt-dir=" + ckpt_dir, "--ckpt-interval=3",
                         "--async-ckpt=1", "--hb-interval=1", "--io-timeout=20"};
  // Iteration 3 captures the first snapshot (async, commit deferred); the
  // exit at iteration 4 fires in the iteration hook, BEFORE the deferred
  // commit's status reduction — the exact capture/commit race.
  options.per_rank_args = {{}, {"--fault=exit:4"}};
  options.timeout_s = 60.0;
  RecoverySpec recovery;
  recovery.max_restarts = 1;
  recovery.ckpt_dir = ckpt_dir;
  recovery.backoff_initial_s = 0.1;
  const SpawnResult run = SpawnWorldWithRecovery(options, recovery);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.attempts, 2) << "exit fault never fired";
  ASSERT_EQ(run.rank_results.size(), static_cast<size_t>(world));

  // The captured-but-uncommitted iteration-3 snapshot must have been
  // invisible: had it been committed, the restart would report
  // resumed_from=3. (A sync save WOULD have committed at iteration 3 —
  // this pins the deferred-commit gating, not just manifest atomicity.)
  for (int r = 0; r < world; ++r) {
    const auto& kv = run.rank_results[static_cast<size_t>(r)];
    const auto it = kv.find("resumed_from");
    ASSERT_NE(it, kv.end());
    EXPECT_EQ(it->second, "-1")
        << "rank " << r << " resumed from an uncommitted async capture";
  }

  // And the recomputed run is still bitwise-correct with intact checkpoints.
  const uint64_t ref_hash = ReferenceHash(world);
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(ParseHash(run.rank_results[static_cast<size_t>(r)]), ref_hash)
        << "rank " << r << " diverged after the capture/commit crash";
  }
  ScanForTornCheckpoints(ckpt_dir);
  if (!HasFailure()) {
    std::filesystem::remove_all(options.log_dir);
  }
}

}  // namespace
}  // namespace egeria
