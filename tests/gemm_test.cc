// Property suite for the packed, blocked, multithreaded Gemm dispatch
// (src/tensor/gemm.h): every transpose combination and accumulate mode against a
// reference triple loop, on shapes chosen to hit full tiles, edge tiles, and
// every cache-blocking boundary, plus bitwise determinism across repeated
// multithreaded runs.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/tensor/compute_pool.h"
#include "src/tensor/gemm.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

struct GemmCase {
  int64_t m;
  int64_t k;
  int64_t n;
};

// Shapes: degenerate (1x1x1), sub-tile, prime/odd edges, multi-block m (the
// row-parallel dimension), k spanning multiple kKc panels, and large-flop
// problems with m inside a single microkernel panel (the B-panel fan-out path).
const GemmCase kCases[] = {
    {1, 1, 1},    {3, 129, 7},  {257, 63, 31}, {6, 16, 6},   {14, 32, 14},
    {2, 500, 3},  {113, 97, 89}, {128, 128, 128}, {240, 384, 48}, {1, 7, 513},
    {9, 700, 1200}, {30, 600, 500},
};

std::vector<float> RandomVec(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) {
    x = rng.NextGaussian() * 0.5F;
  }
  return v;
}

// Reference triple loop with the same fp32 accumulation contract as the packed
// kernel's per-element order (k ascending).
void RefGemm(const std::vector<float>& a, const std::vector<float>& b,
             std::vector<float>& c, int64_t m, int64_t k, int64_t n, bool trans_a,
             bool trans_b, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float s = accumulate ? c[static_cast<size_t>(i * n + j)] : 0.0F;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[static_cast<size_t>(p * m + i)]
                                 : a[static_cast<size_t>(i * k + p)];
        const float bv = trans_b ? b[static_cast<size_t>(j * k + p)]
                                 : b[static_cast<size_t>(p * n + j)];
        s += av * bv;
      }
      c[static_cast<size_t>(i * n + j)] = s;
    }
  }
}

class GemmPropertyTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmPropertyTest, AllTransposeAndAccumulateModesMatchReference) {
  const GemmCase shape = GetParam();
  Rng rng(shape.m * 1000003 + shape.k * 1009 + shape.n);
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      for (const bool accumulate : {false, true}) {
        const std::vector<float> a = RandomVec(shape.m * shape.k, rng);
        const std::vector<float> b = RandomVec(shape.k * shape.n, rng);
        // Seed C with garbage so accumulate=false must fully overwrite it.
        std::vector<float> c = RandomVec(shape.m * shape.n, rng);
        std::vector<float> expected = c;
        Gemm(a.data(), b.data(), c.data(), shape.m, shape.k, shape.n, trans_a,
             trans_b, accumulate);
        RefGemm(a, b, expected, shape.m, shape.k, shape.n, trans_a, trans_b,
                accumulate);
        float max_abs = 1.0F;
        for (float v : expected) {
          max_abs = std::max(max_abs, std::abs(v));
        }
        for (size_t i = 0; i < c.size(); ++i) {
          ASSERT_NEAR(c[i], expected[i], 2e-5F * max_abs)
              << "i=" << i << " m=" << shape.m << " k=" << shape.k
              << " n=" << shape.n << " ta=" << trans_a << " tb=" << trans_b
              << " acc=" << accumulate;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmPropertyTest, ::testing::ValuesIn(kCases));

TEST(GemmTest, BatchedMatchesPerItem) {
  Rng rng(99);
  const int64_t batch = 5;
  const int64_t m = 33;
  const int64_t k = 65;
  const int64_t n = 17;
  const std::vector<float> a = RandomVec(batch * m * k, rng);
  const std::vector<float> b = RandomVec(batch * k * n, rng);
  std::vector<float> c_batched(static_cast<size_t>(batch * m * n), 0.0F);
  std::vector<float> c_items = c_batched;
  BatchedGemm(a.data(), b.data(), c_batched.data(), batch, m, k, n,
              /*trans_a=*/false, /*trans_b=*/true, /*accumulate=*/false);
  for (int64_t bi = 0; bi < batch; ++bi) {
    Gemm(a.data() + bi * m * k, b.data() + bi * k * n, c_items.data() + bi * m * n,
         m, k, n, /*trans_a=*/false, /*trans_b=*/true, /*accumulate=*/false);
  }
  // Batch parallelism must not change any item's arithmetic.
  EXPECT_EQ(0, std::memcmp(c_batched.data(), c_items.data(),
                           c_batched.size() * sizeof(float)));
}

TEST(GemmTest, MultithreadedOutputIsBitwiseStableAcrossRuns) {
  // The shape spans several row blocks so the run is actually parallel whenever
  // the pool has threads (EGERIA_NUM_THREADS is fixed for a process lifetime).
  Rng rng(7);
  const int64_t m = 461;
  const int64_t k = 257;
  const int64_t n = 131;
  const std::vector<float> a = RandomVec(m * k, rng);
  const std::vector<float> b = RandomVec(k * n, rng);
  std::vector<float> first(static_cast<size_t>(m * n), 0.0F);
  Gemm(a.data(), b.data(), first.data(), m, k, n, false, false, false);
  for (int run = 0; run < 5; ++run) {
    std::vector<float> again(static_cast<size_t>(m * n), 0.0F);
    Gemm(a.data(), b.data(), again.data(), m, k, n, false, false, false);
    ASSERT_EQ(0,
              std::memcmp(first.data(), again.data(), first.size() * sizeof(float)))
        << "run " << run << " diverged at " << ComputePoolThreads() << " threads";
  }
}

TEST(GemmTest, ZeroSizedProblemsAreSafe) {
  std::vector<float> c(4, 1.0F);
  // k == 0, accumulate=false: C must be zeroed, nothing read from A/B.
  Gemm(nullptr, nullptr, c.data(), 2, 0, 2, false, false, /*accumulate=*/false);
  for (float v : c) {
    EXPECT_EQ(v, 0.0F);
  }
  std::fill(c.begin(), c.end(), 3.0F);
  // k == 0, accumulate=true: C is untouched.
  Gemm(nullptr, nullptr, c.data(), 2, 0, 2, false, false, /*accumulate=*/true);
  for (float v : c) {
    EXPECT_EQ(v, 3.0F);
  }
  // m == 0 / n == 0: no-ops.
  Gemm(nullptr, nullptr, nullptr, 0, 3, 2, false, false, false);
  Gemm(nullptr, nullptr, nullptr, 2, 3, 0, false, false, false);
}

}  // namespace
}  // namespace egeria
