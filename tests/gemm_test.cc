// Kernel-conformance harness for the packed, blocked, multithreaded Gemm
// dispatch (src/tensor/gemm.h), parameterized over dtype x transpose x
// accumulate x shape.
//
// Every microkernel (fp32, fp16-storage in all operand mixes, int8 dot4) is
// checked against an fp64 triple-loop reference that reads the *stored* operand
// values (i.e. after fp16/int8 rounding), with dtype-aware error bounds:
//   - fp32 / fp16 paths: a running-sum bound scaled to fp32 machine epsilon and
//     the element's absolute term sum (gamma_k-style; the fp16 storage rounding
//     itself is exact in the reference, so only fp32 accumulation error
//     remains), plus a bitwise check against an exact emulation of the kernel's
//     documented accumulation contract (per-element fp32 FMA chain in k order,
//     kKc-blocks folded in ascending order).
//   - int8: exact int32 equality (the kernel contract is integer-exact), with
//     the reference asserting the true value fits int32.
// Shapes cover full tiles, edge tiles, every cache-blocking boundary, the
// B-panel fan-out path, and k % 4 != 0 (int8 dot4 padding).
//
// Multithreaded bitwise determinism is locked in per dtype (repeat-run
// stability) and across thread counts (EGERIA_NUM_THREADS=1 vs =8 subprocess
// hash comparison).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <unistd.h>
#include <string>
#include <vector>

#include "src/tensor/compute_pool.h"
#include "src/tensor/gemm.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

// The k-block extent the accumulation contract is specified against (matches
// kKc in gemm.cc; the bitwise emulation below depends on it).
constexpr int64_t kKBlock = 384;

struct GemmCase {
  int64_t m;
  int64_t k;
  int64_t n;
};

// Shapes: degenerate (1x1x1), sub-tile, prime/odd edges, k % 4 in {1,2,3}
// (int8 dot4 tail), k straddling the kKc=384 block boundary, multi-block m
// (the row-parallel dimension), and large-flop problems with m inside a single
// microkernel panel (the B-panel fan-out path).
const GemmCase kCases[] = {
    {1, 1, 1},      {3, 129, 7},    {257, 63, 31},  {6, 16, 6},
    {14, 32, 14},   {2, 500, 3},    {113, 97, 89},  {128, 128, 128},
    {240, 384, 48}, {17, 385, 33},  {1, 7, 513},    {9, 700, 1200},
    {30, 601, 500}, {5, 102, 37},
};

std::vector<float> RandomVec(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) {
    x = rng.NextGaussian() * 0.5F;
  }
  return v;
}

std::vector<_Float16> ToF16(const std::vector<float>& v) {
  std::vector<_Float16> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = static_cast<_Float16>(v[i]);
  }
  return out;
}

std::vector<int8_t> ToI8(const std::vector<float>& v) {
  std::vector<int8_t> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    // Map the gaussian floats onto the full signed range deterministically.
    const float scaled = v[i] * 120.0F;
    out[i] = static_cast<int8_t>(
        std::max(-127.0F, std::min(127.0F, std::round(scaled))));
  }
  return out;
}

int64_t SrcIndexA(int64_t i, int64_t p, int64_t m, int64_t k, bool trans_a) {
  return trans_a ? p * m + i : i * k + p;
}

int64_t SrcIndexB(int64_t p, int64_t j, int64_t k, int64_t n, bool trans_b) {
  return trans_b ? j * k + p : p * n + j;
}

// fp64 triple loop over the stored operand values. Also returns the absolute
// term sum per element (for the error bound).
template <class SA, class SB>
void RefGemmF64(const std::vector<SA>& a, const std::vector<SB>& b,
                const std::vector<float>& c0, std::vector<double>& ref,
                std::vector<double>& abs_sum, int64_t m, int64_t k, int64_t n,
                bool trans_a, bool trans_b, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = accumulate ? static_cast<double>(c0[static_cast<size_t>(i * n + j)])
                            : 0.0;
      double abss = std::abs(s);
      for (int64_t p = 0; p < k; ++p) {
        const double av =
            static_cast<double>(a[static_cast<size_t>(SrcIndexA(i, p, m, k, trans_a))]);
        const double bv =
            static_cast<double>(b[static_cast<size_t>(SrcIndexB(p, j, k, n, trans_b))]);
        s += av * bv;
        abss += std::abs(av * bv);
      }
      ref[static_cast<size_t>(i * n + j)] = s;
      abs_sum[static_cast<size_t>(i * n + j)] = abss;
    }
  }
}

// Exact emulation of the fp-path accumulation contract: per element, an fp32
// FMA chain over k ascending within each kKc block, block sums folded into C in
// ascending block order (the first block overwriting when accumulate=false).
template <class SA, class SB>
void EmulateF32Contract(const std::vector<SA>& a, const std::vector<SB>& b,
                        std::vector<float>& c, int64_t m, int64_t k, int64_t n,
                        bool trans_a, bool trans_b, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float out = accumulate ? c[static_cast<size_t>(i * n + j)] : 0.0F;
      bool first = !accumulate;
      for (int64_t pc = 0; pc < k; pc += kKBlock) {
        const int64_t kc = std::min(kKBlock, k - pc);
        float acc = 0.0F;
        for (int64_t p = pc; p < pc + kc; ++p) {
          const float av =
              static_cast<float>(a[static_cast<size_t>(SrcIndexA(i, p, m, k, trans_a))]);
          const float bv =
              static_cast<float>(b[static_cast<size_t>(SrcIndexB(p, j, k, n, trans_b))]);
          acc = std::fmaf(av, bv, acc);
        }
        out = first ? acc : out + acc;
        first = false;
      }
      c[static_cast<size_t>(i * n + j)] = out;
    }
  }
}

// One dtype combination of the parameterized conformance run.
enum class Combo { kF32, kF16F16, kF32F16, kF16F32, kI8 };

const char* ComboName(Combo c) {
  switch (c) {
    case Combo::kF32: return "f32xf32";
    case Combo::kF16F16: return "f16xf16";
    case Combo::kF32F16: return "f32xf16";
    case Combo::kF16F32: return "f16xf32";
    case Combo::kI8: return "i8xi8";
  }
  return "?";
}

// Runs the kernel + fp64 reference + contract emulation for one fp-family
// combo and asserts the dtype-aware bounds.
template <class SA, class SB>
void CheckFpCombo(Combo combo, const std::vector<float>& af,
                  const std::vector<float>& bf, const GemmCase& shape,
                  bool trans_a, bool trans_b, bool accumulate, Rng& rng) {
  const int64_t m = shape.m;
  const int64_t k = shape.k;
  const int64_t n = shape.n;
  std::vector<SA> a;
  std::vector<SB> b;
  if constexpr (std::is_same_v<SA, float>) {
    a = af;
  } else {
    a = ToF16(af);
  }
  if constexpr (std::is_same_v<SB, float>) {
    b = bf;
  } else {
    b = ToF16(bf);
  }
  // Seed C with garbage so accumulate=false must fully overwrite it.
  std::vector<float> c = RandomVec(m * n, rng);
  const std::vector<float> c0 = c;
  Gemm(a.data(), b.data(), c.data(), m, k, n, trans_a, trans_b, accumulate);

  std::vector<double> ref(static_cast<size_t>(m * n));
  std::vector<double> abs_sum(static_cast<size_t>(m * n));
  RefGemmF64(a, b, c0, ref, abs_sum, m, k, n, trans_a, trans_b, accumulate);
  std::vector<float> emulated = c0;
  EmulateF32Contract(a, b, emulated, m, k, n, trans_a, trans_b, accumulate);

  // gamma_k-style running-sum bound in fp32 epsilon, scaled by the element's
  // absolute term sum (the fp16 storage rounding is applied identically in the
  // reference, so only accumulation error remains for every combo).
  const double eps32 = 1.1920929e-7;
  for (int64_t i = 0; i < m * n; ++i) {
    const double bound =
        static_cast<double>(k + 2) * eps32 * (abs_sum[static_cast<size_t>(i)] + 1.0);
    ASSERT_NEAR(static_cast<double>(c[static_cast<size_t>(i)]),
                ref[static_cast<size_t>(i)], bound)
        << ComboName(combo) << " i=" << i << " m=" << m << " k=" << k
        << " n=" << n << " ta=" << trans_a << " tb=" << trans_b
        << " acc=" << accumulate;
#if defined(__FMA__)
    // The bitwise check assumes the compiler contracts the microkernel's
    // mul+add into FMA (the gcc/clang default at -O3 on FMA targets). Without
    // FMA hardware the kernel legitimately rounds twice per step, so only the
    // gamma_k bound above applies there.
    ASSERT_EQ(c[static_cast<size_t>(i)], emulated[static_cast<size_t>(i)])
        << "accumulation contract (fp32 FMA chain, " << kKBlock
        << "-wide k blocks) violated: " << ComboName(combo) << " i=" << i
        << " m=" << m << " k=" << k << " n=" << n << " ta=" << trans_a
        << " tb=" << trans_b << " acc=" << accumulate;
#endif
  }
}

void CheckI8Combo(const std::vector<float>& af, const std::vector<float>& bf,
                  const GemmCase& shape, bool trans_a, bool trans_b,
                  bool accumulate, Rng& rng) {
  const int64_t m = shape.m;
  const int64_t k = shape.k;
  const int64_t n = shape.n;
  const std::vector<int8_t> a = ToI8(af);
  const std::vector<int8_t> b = ToI8(bf);
  std::vector<int32_t> c(static_cast<size_t>(m * n));
  for (auto& v : c) {
    v = static_cast<int32_t>(rng.NextGaussian() * 1000.0F);  // garbage seed
  }
  const std::vector<int32_t> c0 = c;
  Gemm(a.data(), b.data(), c.data(), m, k, n, trans_a, trans_b, accumulate);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int64_t s = accumulate ? c0[static_cast<size_t>(i * n + j)] : 0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<int64_t>(a[static_cast<size_t>(SrcIndexA(i, p, m, k, trans_a))]) *
             static_cast<int64_t>(b[static_cast<size_t>(SrcIndexB(p, j, k, n, trans_b))]);
      }
      ASSERT_GE(s, INT32_MIN);  // test shapes must stay integer-exact
      ASSERT_LE(s, INT32_MAX);
      ASSERT_EQ(static_cast<int64_t>(c[static_cast<size_t>(i * n + j)]), s)
          << "i8xi8 i=" << i << " j=" << j << " m=" << m << " k=" << k
          << " n=" << n << " ta=" << trans_a << " tb=" << trans_b
          << " acc=" << accumulate;
    }
  }
}

class GemmConformanceTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmConformanceTest, AllDtypeTransposeAccumulateModesMatchReference) {
  const GemmCase shape = GetParam();
  Rng rng(shape.m * 1000003 + shape.k * 1009 + shape.n);
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      for (const bool accumulate : {false, true}) {
        const std::vector<float> af = RandomVec(shape.m * shape.k, rng);
        const std::vector<float> bf = RandomVec(shape.k * shape.n, rng);
        CheckFpCombo<float, float>(Combo::kF32, af, bf, shape, trans_a, trans_b,
                                   accumulate, rng);
        CheckFpCombo<_Float16, _Float16>(Combo::kF16F16, af, bf, shape, trans_a,
                                         trans_b, accumulate, rng);
        CheckFpCombo<float, _Float16>(Combo::kF32F16, af, bf, shape, trans_a,
                                      trans_b, accumulate, rng);
        CheckFpCombo<_Float16, float>(Combo::kF16F32, af, bf, shape, trans_a,
                                      trans_b, accumulate, rng);
        CheckI8Combo(af, bf, shape, trans_a, trans_b, accumulate, rng);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmConformanceTest, ::testing::ValuesIn(kCases));

TEST(GemmTest, TaggedDispatchMatchesTypedOverloads) {
  Rng rng(1234);
  const int64_t m = 23;
  const int64_t k = 41;
  const int64_t n = 19;
  const std::vector<float> af = RandomVec(m * k, rng);
  const std::vector<float> bf = RandomVec(k * n, rng);
  const std::vector<_Float16> bh = ToF16(bf);
  std::vector<float> typed(static_cast<size_t>(m * n), 0.0F);
  std::vector<float> tagged = typed;
  Gemm(af.data(), bh.data(), typed.data(), m, k, n, false, false, false);
  Gemm(GemmDtype::kF32, GemmDtype::kF16, af.data(), bh.data(), tagged.data(), m,
       k, n, false, false, false);
  EXPECT_EQ(0, std::memcmp(typed.data(), tagged.data(), typed.size() * sizeof(float)));

  const std::vector<int8_t> ai = ToI8(af);
  const std::vector<int8_t> bi = ToI8(bf);
  std::vector<int32_t> ityped(static_cast<size_t>(m * n), 0);
  std::vector<int32_t> itagged = ityped;
  Gemm(ai.data(), bi.data(), ityped.data(), m, k, n, false, true, false);
  Gemm(GemmDtype::kI8, GemmDtype::kI8, ai.data(), bi.data(), itagged.data(), m,
       k, n, false, true, false);
  EXPECT_EQ(0,
            std::memcmp(ityped.data(), itagged.data(), ityped.size() * sizeof(int32_t)));
}

TEST(GemmTest, BatchedMatchesPerItem) {
  Rng rng(99);
  const int64_t batch = 5;
  const int64_t m = 33;
  const int64_t k = 65;
  const int64_t n = 17;
  const std::vector<float> a = RandomVec(batch * m * k, rng);
  const std::vector<float> b = RandomVec(batch * k * n, rng);
  std::vector<float> c_batched(static_cast<size_t>(batch * m * n), 0.0F);
  std::vector<float> c_items = c_batched;
  BatchedGemm(a.data(), b.data(), c_batched.data(), batch, m, k, n,
              /*trans_a=*/false, /*trans_b=*/true, /*accumulate=*/false);
  for (int64_t bi = 0; bi < batch; ++bi) {
    Gemm(a.data() + bi * m * k, b.data() + bi * k * n, c_items.data() + bi * m * n,
         m, k, n, /*trans_a=*/false, /*trans_b=*/true, /*accumulate=*/false);
  }
  // Batch parallelism must not change any item's arithmetic.
  EXPECT_EQ(0, std::memcmp(c_batched.data(), c_items.data(),
                           c_batched.size() * sizeof(float)));
}

// ---------------------------------------------------------------- determinism
//
// The shape spans several row blocks so runs are actually parallel whenever the
// pool has threads; each dtype must produce bitwise-identical bytes on every
// run (threads own disjoint C tiles; per-element arithmetic order is fixed).

template <class Fn>
void ExpectBitwiseStable(const char* what, int64_t out_bytes, const Fn& run) {
  std::vector<char> first(static_cast<size_t>(out_bytes));
  run(first.data());
  for (int round = 0; round < 5; ++round) {
    std::vector<char> again(static_cast<size_t>(out_bytes));
    run(again.data());
    ASSERT_EQ(0, std::memcmp(first.data(), again.data(), first.size()))
        << what << " diverged on round " << round << " at "
        << ComputePoolThreads() << " threads";
  }
}

TEST(GemmDeterminism, Fp32MultithreadedOutputIsBitwiseStable) {
  Rng rng(7);
  const int64_t m = 461;
  const int64_t k = 257;
  const int64_t n = 131;
  const std::vector<float> a = RandomVec(m * k, rng);
  const std::vector<float> b = RandomVec(k * n, rng);
  ExpectBitwiseStable("f32", m * n * static_cast<int64_t>(sizeof(float)),
                      [&](char* out) {
                        Gemm(a.data(), b.data(), reinterpret_cast<float*>(out),
                             m, k, n, false, false, false);
                      });
}

TEST(GemmDeterminism, Fp16MultithreadedOutputIsBitwiseStable) {
  Rng rng(8);
  const int64_t m = 461;
  const int64_t k = 390;  // spans the kKc block boundary
  const int64_t n = 131;
  const std::vector<_Float16> a = ToF16(RandomVec(m * k, rng));
  const std::vector<_Float16> b = ToF16(RandomVec(k * n, rng));
  ExpectBitwiseStable("f16", m * n * static_cast<int64_t>(sizeof(float)),
                      [&](char* out) {
                        Gemm(a.data(), b.data(), reinterpret_cast<float*>(out),
                             m, k, n, false, true, false);
                      });
}

TEST(GemmDeterminism, Int8MultithreadedOutputIsBitwiseStable) {
  Rng rng(9);
  const int64_t m = 461;
  const int64_t k = 258;  // k % 4 != 0: dot4 padding in every block
  const int64_t n = 131;
  const std::vector<int8_t> a = ToI8(RandomVec(m * k, rng));
  const std::vector<int8_t> b = ToI8(RandomVec(k * n, rng));
  ExpectBitwiseStable("i8", m * n * static_cast<int64_t>(sizeof(int32_t)),
                      [&](char* out) {
                        Gemm(a.data(), b.data(), reinterpret_cast<int32_t*>(out),
                             m, k, n, false, false, false);
                      });
}

// FNV-1a over the result bytes of one gemm per dtype; printed by the child
// process in the thread-count invariance test below. Runs unconditionally (it
// is cheap) so the parent can filter on this test name.
uint64_t HashBytes(uint64_t h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return h;
}

TEST(GemmThreadHashChild, EmitResultHash) {
  Rng rng(31337);
  uint64_t h = 1469598103934665603ULL;
  {
    const int64_t m = 211;
    const int64_t k = 307;
    const int64_t n = 97;
    const std::vector<float> a = RandomVec(m * k, rng);
    const std::vector<float> b = RandomVec(k * n, rng);
    std::vector<float> c(static_cast<size_t>(m * n), 0.0F);
    Gemm(a.data(), b.data(), c.data(), m, k, n, false, false, false);
    h = HashBytes(h, c.data(), c.size() * sizeof(float));
  }
  {
    const int64_t m = 97;
    const int64_t k = 385;
    const int64_t n = 64;
    const std::vector<_Float16> a = ToF16(RandomVec(m * k, rng));
    const std::vector<float> b = RandomVec(k * n, rng);
    std::vector<float> c(static_cast<size_t>(m * n), 0.0F);
    Gemm(a.data(), b.data(), c.data(), m, k, n, false, false, false);
    h = HashBytes(h, c.data(), c.size() * sizeof(float));
  }
  {
    const int64_t m = 113;
    const int64_t k = 203;
    const int64_t n = 77;
    const std::vector<int8_t> a = ToI8(RandomVec(m * k, rng));
    const std::vector<int8_t> b = ToI8(RandomVec(k * n, rng));
    std::vector<int32_t> c(static_cast<size_t>(m * n), 0);
    Gemm(a.data(), b.data(), c.data(), m, k, n, false, true, false);
    h = HashBytes(h, c.data(), c.size() * sizeof(int32_t));
  }
  std::printf("GEMM_HASH=%016llx\n", static_cast<unsigned long long>(h));
}

// Regression: EGERIA_NUM_THREADS=1 and =8 must agree bitwise. The pool width
// is fixed for a process lifetime, so each count runs in a child process that
// re-executes this binary filtered to the hash-emitting test above.
TEST(GemmDeterminism, ThreadCount1And8AgreeBitwise) {
  // Resolve the real binary path up front: /proc/self/exe inside the popen'd
  // shell would point at the shell, not this test.
  char self[4096];
  const ssize_t len = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (len <= 0) {
    GTEST_SKIP() << "could not resolve /proc/self/exe";
  }
  self[len] = '\0';
  const auto child_hash = [&self](int threads) -> std::string {
    char cmd[4608];
    std::snprintf(cmd, sizeof(cmd),
                  "EGERIA_NUM_THREADS=%d '%s' "
                  "--gtest_filter=GemmThreadHashChild.EmitResultHash 2>/dev/null",
                  threads, self);
    FILE* pipe = popen(cmd, "r");
    if (pipe == nullptr) {
      return "";
    }
    std::string hash;
    char line[512];
    while (std::fgets(line, sizeof(line), pipe) != nullptr) {
      if (std::strncmp(line, "GEMM_HASH=", 10) == 0) {
        hash.assign(line + 10);
        while (!hash.empty() && (hash.back() == '\n' || hash.back() == '\r')) {
          hash.pop_back();
        }
      }
    }
    pclose(pipe);
    return hash;
  };
  const std::string h1 = child_hash(1);
  const std::string h8 = child_hash(8);
  if (h1.empty() || h8.empty()) {
    GTEST_SKIP() << "could not re-exec self to vary EGERIA_NUM_THREADS";
  }
  EXPECT_EQ(h1, h8) << "results must be bitwise identical across thread counts";
}

TEST(GemmTest, ZeroSizedProblemsAreSafe) {
  const float* nof = nullptr;
  const int8_t* noi = nullptr;
  std::vector<float> c(4, 1.0F);
  // k == 0, accumulate=false: C must be zeroed, nothing read from A/B.
  Gemm(nof, nof, c.data(), 2, 0, 2, false, false, /*accumulate=*/false);
  for (float v : c) {
    EXPECT_EQ(v, 0.0F);
  }
  std::fill(c.begin(), c.end(), 3.0F);
  // k == 0, accumulate=true: C is untouched.
  Gemm(nof, nof, c.data(), 2, 0, 2, false, false, /*accumulate=*/true);
  for (float v : c) {
    EXPECT_EQ(v, 3.0F);
  }
  // m == 0 / n == 0: no-ops, for the int8 path too.
  Gemm(nof, nof, static_cast<float*>(nullptr), 0, 3, 2, false, false, false);
  Gemm(nof, nof, static_cast<float*>(nullptr), 2, 3, 0, false, false, false);
  std::vector<int32_t> ci(4, 5);
  Gemm(noi, noi, ci.data(), 2, 0, 2, false, false, /*accumulate=*/false);
  for (int32_t v : ci) {
    EXPECT_EQ(v, 0);
  }
}

}  // namespace
}  // namespace egeria
