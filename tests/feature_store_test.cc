// The persistent frozen-feature store (paper S4.3, taken to its conclusion):
// composite-key invalidation (stage / precision / generation), FIFO disk
// eviction, corrupt-spill hygiene under the keyed filename schema, manifest
// adoption across a process restart, the prefix-determinism gate, and the
// Trainer-level contracts — cached freezing runs bitwise identical to uncached
// ones (ResNet and Transformer geometries), the store declining under
// epoch-varying augmentation, and the store surviving a crash/resume cycle
// alongside the checkpoint directory.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/baselines/freeze_baselines.h"
#include "src/ckpt/state_dict.h"
#include "src/core/activation_cache.h"
#include "src/core/module_partitioner.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_image.h"
#include "src/data/synthetic_text.h"
#include "src/models/resnet.h"
#include "src/models/transformer.h"
#include "src/nn/dropout.h"
#include "src/optim/lr_scheduler.h"

namespace egeria {
namespace {

namespace fs = std::filesystem;

std::string MakeTempDir(const std::string& label) {
  std::string tmpl = (fs::temp_directory_path() / ("egeria-" + label + "-XXXXXX")).string();
  EXPECT_NE(nullptr, mkdtemp(tmpl.data()));
  return tmpl;
}

struct TempDir {
  explicit TempDir(const std::string& label) : path(MakeTempDir(label)) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// [n, 4] activations whose rows are recognizable per id: row i = id*10 + col.
Tensor ActsFor(const std::vector<int64_t>& ids) {
  Tensor t({static_cast<int64_t>(ids.size()), 4});
  for (size_t i = 0; i < ids.size(); ++i) {
    for (int64_t c = 0; c < 4; ++c) {
      t.Data()[static_cast<int64_t>(i) * 4 + c] =
          static_cast<float>(ids[i] * 10 + c);
    }
  }
  return t;
}

void ExpectRowsEqual(const Tensor& got, const std::vector<int64_t>& ids) {
  ASSERT_TRUE(got.Defined());
  ASSERT_EQ(got.Size(0), static_cast<int64_t>(ids.size()));
  Tensor want = ActsFor(ids);
  for (int64_t i = 0; i < got.NumEl(); ++i) {
    ASSERT_EQ(got.Data()[i], want.Data()[i]) << "element " << i;
  }
}

int64_t SpillFileCount(const std::string& dir) {
  int64_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".egt") {
      ++n;
    }
  }
  return n;
}

// ------------------------------------------------------------ composite keying

TEST(FeatureStore, KeyChangeInvalidatesAndIdenticalKeyIsStable) {
  TempDir dir("fs-key");
  ActivationCache cache(dir.path + "/c", /*memory_entries=*/8);
  const std::vector<int64_t> ids = {1, 2, 3};

  cache.SetKey(/*stage=*/2, Precision::kFloat32, /*generation=*/7);
  cache.StoreBatch(ids, ActsFor(ids));
  ASSERT_TRUE(cache.HasAll(ids));

  // Re-setting the identical key is the per-iteration fast path: nothing lost.
  cache.SetKey(2, Precision::kFloat32, 7);
  EXPECT_TRUE(cache.HasAll(ids));
  ExpectRowsEqual(cache.FetchBatch(ids), ids);

  // Generation moved (frontier weights or augmentation changed): everything out.
  cache.SetKey(2, Precision::kFloat32, 8);
  EXPECT_FALSE(cache.HasAll(ids));

  cache.StoreBatch(ids, ActsFor(ids));
  ASSERT_TRUE(cache.HasAll(ids));
  // Prefix precision changed: the cached bits are the wrong numbers.
  cache.SetKey(2, Precision::kFloat16, 8);
  EXPECT_FALSE(cache.HasAll(ids));

  cache.StoreBatch(ids, ActsFor(ids));
  ASSERT_TRUE(cache.HasAll(ids));
  // Frontier advanced to a different boundary stage.
  cache.SetKey(3, Precision::kFloat16, 8);
  EXPECT_FALSE(cache.HasAll(ids));
}

TEST(FeatureStore, FifoEvictionForgetsOldestEntirely) {
  TempDir dir("fs-evict");
  // Disk accounting is payload bytes: a [1,4] f32 slice is 16 bytes. Budget two.
  ActivationCache cache(dir.path + "/c", /*memory_entries=*/8,
                        /*max_disk_bytes=*/32);
  cache.SetKey(0, Precision::kFloat32, 5);
  const std::vector<int64_t> ids = {1, 2, 3};
  cache.StoreBatch(ids, ActsFor(ids));

  EXPECT_EQ(cache.Stats().evictions, 1);
  // Evicted = forgotten entirely, memory copy included: HasAll must not promise
  // a sample whose backing store is gone.
  EXPECT_FALSE(cache.HasAll({1}));
  EXPECT_TRUE(cache.HasAll({2, 3}));
  ExpectRowsEqual(cache.FetchBatch({2, 3}), {2, 3});
  EXPECT_EQ(SpillFileCount(dir.path + "/c"), 2);
}

TEST(FeatureStore, CorruptSpillIsMissUnderKeyedFilename) {
  TempDir dir("fs-corrupt");
  ActivationCache cache(dir.path + "/c", /*memory_entries=*/1);
  cache.SetKey(/*stage=*/2, Precision::kFloat32, /*generation=*/7);
  const std::vector<int64_t> ids = {10, 11, 12};
  cache.StoreBatch(ids, ActsFor(ids));
  ASSERT_TRUE(cache.HasAll(ids));

  // Truncate one spill under the composite-key filename schema
  // (v<fmt>_s<stage>_p<precision>_<id>.egt).
  const std::string victim = dir.path + "/c/v1_s2_p0_11.egt";
  ASSERT_TRUE(fs::exists(victim)) << "spill filename schema changed?";
  { std::ofstream(victim, std::ios::trunc); }

  // memory_entries=1 forces the disk path for ids 10 and 11; the checksummed
  // reader turns the truncated file into a miss, never garbage activations.
  const auto misses_before = cache.Stats().misses;
  Tensor fetched = cache.FetchBatch(ids);
  EXPECT_FALSE(fetched.Defined());
  EXPECT_GT(cache.Stats().misses, misses_before);
}

// ------------------------------------------------------- persistence, adoption

TEST(FeatureStore, PersistentStoreAdoptedAcrossRestart) {
  TempDir dir("fs-adopt");
  const std::string store = dir.path + "/store";
  const std::vector<int64_t> ids = {1, 2, 3, 4};
  {
    ActivationCache cache(store, 8, int64_t{4} << 30, /*persistent=*/true);
    cache.SetKey(/*stage=*/1, Precision::kFloat32, /*generation=*/42);
    cache.StoreBatch(ids, ActsFor(ids));
    ASSERT_TRUE(cache.HasAll(ids));
  }
  // The persistent store survives its instance.
  ASSERT_TRUE(fs::exists(store + "/store.manifest"));
  ASSERT_EQ(SpillFileCount(store), 4);

  // "Process restart": fresh instance, same key -> the manifest validates the
  // directory and every surviving spill is adopted, bit-exact.
  ActivationCache cache(store, 8, int64_t{4} << 30, /*persistent=*/true);
  cache.SetKey(1, Precision::kFloat32, 42);
  EXPECT_EQ(cache.Stats().adopted, 4);
  EXPECT_TRUE(cache.HasAll(ids));
  ExpectRowsEqual(cache.FetchBatch(ids), ids);
}

TEST(FeatureStore, AdoptionRefusedOnGenerationMismatch) {
  TempDir dir("fs-noadopt");
  const std::string store = dir.path + "/store";
  const std::vector<int64_t> ids = {1, 2, 3};
  {
    ActivationCache cache(store, 8, int64_t{4} << 30, /*persistent=*/true);
    cache.SetKey(1, Precision::kFloat32, 42);
    cache.StoreBatch(ids, ActsFor(ids));
  }
  // Different generation (prefix weights or augmentation changed across the
  // restart): the directory is stale and must be swept, not adopted.
  ActivationCache cache(store, 8, int64_t{4} << 30, /*persistent=*/true);
  cache.SetKey(1, Precision::kFloat32, 43);
  EXPECT_EQ(cache.Stats().adopted, 0);
  EXPECT_FALSE(cache.HasAll(ids));
  EXPECT_EQ(SpillFileCount(store), 0);
}

TEST(FeatureStore, LegacyUnkeyedModeNeverAdopts) {
  TempDir dir("fs-legacy");
  const std::string store = dir.path + "/store";
  const std::vector<int64_t> ids = {1, 2};
  {
    ActivationCache cache(store, 8, int64_t{4} << 30, /*persistent=*/true);
    cache.SetStage(0);  // generation 0: the unkeyed SetStage mode
    cache.StoreBatch(ids, ActsFor(ids));
  }
  EXPECT_FALSE(fs::exists(store + "/store.manifest"))
      << "generation 0 must not write a manifest";
  ActivationCache cache(store, 8, int64_t{4} << 30, /*persistent=*/true);
  cache.SetStage(0);
  EXPECT_EQ(cache.Stats().adopted, 0);
  EXPECT_FALSE(cache.HasAll(ids));
}

// ----------------------------------------------------------------- concurrency

TEST(FeatureStore, ConcurrentStoreFetchPrefetchUnderFixedKey) {
  // The trainer's real shape: one thread stores/fetches while the prefetcher
  // loads spills in the background. Run under TSan in CI.
  TempDir dir("fs-conc");
  ActivationCache cache(dir.path + "/c", /*memory_entries=*/4);
  cache.SetKey(0, Precision::kFloat32, 9);

  constexpr int kBatches = 32;
  std::thread writer([&] {
    for (int b = 0; b < kBatches; ++b) {
      std::vector<int64_t> ids = {b * 4, b * 4 + 1, b * 4 + 2, b * 4 + 3};
      cache.StoreBatch(ids, ActsFor(ids));
    }
  });
  std::thread reader([&] {
    for (int b = 0; b < kBatches; ++b) {
      std::vector<int64_t> ids = {b * 4, b * 4 + 1, b * 4 + 2, b * 4 + 3};
      cache.PrefetchAsync(ids);
      if (cache.HasAll(ids)) {
        Tensor got = cache.FetchBatch(ids);
        if (got.Defined()) {
          ExpectRowsEqual(got, ids);
        }
      }
    }
  });
  writer.join();
  reader.join();

  // Everything the writer stored is servable and bit-exact afterwards.
  for (int b = 0; b < kBatches; ++b) {
    std::vector<int64_t> ids = {b * 4, b * 4 + 1, b * 4 + 2, b * 4 + 3};
    ASSERT_TRUE(cache.HasAll(ids)) << "batch " << b;
    ExpectRowsEqual(cache.FetchBatch(ids), ids);
  }
  EXPECT_EQ(cache.Stats().stores, kBatches * 4);
}

TEST(FeatureStore, RekeyRacingPrefetchNeverResurrectsSweptEntries) {
  // A key change sweeps the directory while the prefetcher may hold stale
  // paths; the key-epoch snapshot protocol must turn those loads into no-ops.
  TempDir dir("fs-rekey");
  ActivationCache cache(dir.path + "/c", /*memory_entries=*/4);
  std::vector<int64_t> ids(32);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int64_t>(i);
  }
  for (uint64_t gen = 1; gen <= 8; ++gen) {
    cache.SetKey(0, Precision::kFloat32, gen);
    cache.StoreBatch(ids, ActsFor(ids));
    cache.PrefetchAsync(ids);  // In flight while the next SetKey sweeps.
  }
  cache.SetKey(0, Precision::kFloat32, 100);
  EXPECT_FALSE(cache.HasAll(ids));
  cache.StoreBatch(ids, ActsFor(ids));
  EXPECT_TRUE(cache.HasAll(ids));
  ExpectRowsEqual(cache.FetchBatch(ids), ids);
}

// -------------------------------------------------- prefix-determinism gate

TEST(FeatureStore, PrefixForwardDeterministicTracksDropoutMode) {
  std::vector<std::unique_ptr<Module>> stages;
  stages.push_back(std::make_unique<Dropout>("d0", 0.5F));
  stages.push_back(std::make_unique<Dropout>("d1", 0.0F));
  StageChainModel model("drop", std::move(stages));

  model.SetTraining(true);
  EXPECT_TRUE(model.PrefixForwardDeterministic(0));  // empty prefix
  EXPECT_FALSE(model.PrefixForwardDeterministic(1)) << "train-mode dropout served";
  EXPECT_FALSE(model.PrefixForwardDeterministic(2));

  // Freezing the stochastic stage turns its dropout into a no-op: a frontier
  // frozen through FreezeUpTo is always servable. p=0 was never stochastic.
  model.SetStageFrozen(0, true);
  EXPECT_TRUE(model.PrefixForwardDeterministic(1));
  EXPECT_TRUE(model.PrefixForwardDeterministic(2));

  model.SetStageFrozen(0, false);
  model.SetTraining(false);
  EXPECT_TRUE(model.PrefixForwardDeterministic(2));
}

TEST(FeatureStore, PrefixDeterminismRecursesIntoTransformerLayers) {
  TransformerConfig cfg;
  cfg.vocab = 16;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.ffn_dim = 16;
  cfg.num_encoder_layers = 2;
  cfg.num_decoder_layers = 2;
  cfg.max_len = 8;
  cfg.dropout = 0.1F;
  Rng rng(41);
  TransformerChainModel model("t", cfg, rng);

  // The dropout sits inside the encoder layers' submodules, not at stage level:
  // the gate must find it recursively.
  model.SetTraining(true);
  EXPECT_FALSE(model.PrefixForwardDeterministic(3));
  for (int s = 0; s < 3; ++s) {
    model.SetStageFrozen(s, true);
  }
  EXPECT_TRUE(model.PrefixForwardDeterministic(3));
}

// ------------------------------------------------------- trainer-level pins

struct ResNetWorkload {
  std::unique_ptr<StageChainModel> model;
  std::unique_ptr<SyntheticImageDataset> train;
  std::unique_ptr<SyntheticImageDataset> val;
};

ResNetWorkload MakeResNetWorkload(uint64_t seed = 7, bool epoch_varying = false) {
  ResNetWorkload w;
  Rng rng(seed);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 1;
  mcfg.base_width = 8;
  mcfg.num_classes = 4;
  w.model = PartitionIntoChain("resnet", BuildCifarResNetBlocks(mcfg, rng),
                               PartitionConfig{.target_modules = 4});
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 256;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise_std = 0.5F;
  dcfg.epoch_varying_augment = epoch_varying;
  w.train = std::make_unique<SyntheticImageDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.epoch_varying_augment = false;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 64;
  w.val = std::make_unique<SyntheticImageDataset>(vcfg);
  return w;
}

// Deterministic static-freeze configuration: synchronous controller, no
// plasticity evals, freeze point supplied by StaticFreezeHook.
TrainConfig StaticFreezeConfig(int epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 16;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.val_batches = 4;
  cfg.enable_egeria = true;
  cfg.egeria.async_controller = false;
  cfg.egeria.eval_interval_n = 1 << 20;
  return cfg;
}

TEST(FeatureStoreTrainer, ResNetCachedRunBitwiseIdenticalAndSkipsWholeEpochs) {
  TempDir caches("fst-resnet");
  auto run = [&](bool enable_cache) {
    ResNetWorkload w = MakeResNetWorkload();
    TrainConfig cfg = StaticFreezeConfig(/*epochs=*/5);
    cfg.egeria.enable_cache = enable_cache;
    if (enable_cache) {
      cfg.egeria.cache_dir = caches.path + "/on";
    }
    StaticFreezeHook hook(/*epoch=*/1, /*stage=*/1);
    Trainer trainer(*w.model, *w.train, *w.val, cfg);
    trainer.SetFreezeHook(&hook);
    TrainResult r = trainer.Run();
    return std::make_pair(r, HashModelState(*w.model));
  };
  auto [r_on, hash_on] = run(true);
  auto [r_off, hash_off] = run(false);

  // The headline correctness bar: augmentation is epoch-deterministic, so the
  // cached run is bitwise identical to the uncached one.
  EXPECT_EQ(hash_on, hash_off) << "feature store changed training numerics";

  // Freeze lands at iter 16 (end of epoch 0). Epoch 1 populates the store;
  // every post-populate epoch is served start to finish — zero frozen-prefix
  // forwards. These are exact counts, not timings.
  const int64_t ipe = 256 / 16;
  ASSERT_EQ(static_cast<int64_t>(r_on.epochs.size()), 5);
  EXPECT_EQ(r_on.epochs[1].fp_skips, 0);
  EXPECT_GT(r_on.epochs[1].frozen_fp_seconds, 0.0);
  for (int e = 2; e < 5; ++e) {
    EXPECT_EQ(r_on.epochs[e].fp_skips, ipe) << "epoch " << e;
    EXPECT_EQ(r_on.epochs[e].frozen_fp_seconds, 0.0) << "epoch " << e;
  }
  EXPECT_EQ(r_on.fp_skip_count, 3 * ipe);
  EXPECT_EQ(r_on.cache_declined_iters, 0);
  EXPECT_GT(r_on.cache.stores, 0);

  // The store-off run recomputes the frozen prefix every post-freeze iteration
  // (and measures it — that timing is the fig09 saved_s baseline).
  EXPECT_EQ(r_off.fp_skip_count, 0);
  EXPECT_GT(r_off.frozen_fp_seconds, r_on.frozen_fp_seconds);
}

TEST(FeatureStoreTrainer, TransformerCachedRunBitwiseIdentical) {
  TempDir caches("fst-transformer");
  auto run = [&](bool enable_cache) {
    TransformerConfig mcfg;
    mcfg.vocab = 16;
    mcfg.dim = 8;
    mcfg.heads = 2;
    mcfg.ffn_dim = 16;
    mcfg.num_encoder_layers = 2;
    mcfg.num_decoder_layers = 2;
    mcfg.max_len = 8;
    Rng rng(43);
    TransformerChainModel model("t", mcfg, rng);

    SyntheticTranslationConfig dcfg;
    dcfg.vocab = 16;
    dcfg.seq_len = 8;
    dcfg.num_samples = 128;
    SyntheticTranslationDataset train(dcfg);
    auto vcfg = dcfg;
    vcfg.sample_salt = 1000000;
    vcfg.num_samples = 32;
    SyntheticTranslationDataset val(vcfg);

    TrainConfig cfg = StaticFreezeConfig(/*epochs=*/5);
    cfg.task.kind = TaskKind::kTranslation;
    cfg.optimizer = TrainConfig::Optim::kAdam;
    cfg.lr_schedule = std::make_shared<ConstantLr>(0.002F);
    cfg.val_batches = 2;
    cfg.egeria.enable_cache = enable_cache;
    if (enable_cache) {
      cfg.egeria.cache_dir = caches.path + "/on";
    }
    // Frontier 2 (embed + enc0): within the encoder-memory skip bound, and the
    // boundary key must stay fp32 — this model rejects forward substitution.
    StaticFreezeHook hook(/*epoch=*/1, /*stage=*/1);
    Trainer trainer(model, train, val, cfg);
    trainer.SetFreezeHook(&hook);
    TrainResult r = trainer.Run();
    return std::make_pair(r, HashModelState(model));
  };
  auto [r_on, hash_on] = run(true);
  auto [r_off, hash_off] = run(false);

  EXPECT_EQ(hash_on, hash_off)
      << "feature store changed Transformer training numerics";
  const int64_t ipe = 128 / 16;
  EXPECT_EQ(r_on.fp_skip_count, 3 * ipe);  // Epochs 2-4 served end to end.
  EXPECT_EQ(r_off.fp_skip_count, 0);
}

TEST(FeatureStoreTrainer, EpochVaryingAugmentationDeclinesToServe) {
  ResNetWorkload w = MakeResNetWorkload(/*seed=*/7, /*epoch_varying=*/true);
  ASSERT_NE(w.train->AugmentationSignature(0), w.train->AugmentationSignature(1))
      << "dataset no longer varies augmentation by epoch; test is hollow";

  TempDir cache("fst-augvary");
  TrainConfig cfg = StaticFreezeConfig(/*epochs=*/4);
  cfg.egeria.enable_cache = true;
  cfg.egeria.cache_dir = cache.path + "/c";
  StaticFreezeHook hook(/*epoch=*/1, /*stage=*/1);
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  trainer.SetFreezeHook(&hook);
  TrainResult r = trainer.Run();

  // The store is on but must refuse every iteration: a cached boundary from
  // epoch e would replay epoch e's augmentation into epoch e+1.
  EXPECT_EQ(r.fp_skip_count, 0);
  EXPECT_GT(r.cache_declined_iters, 0);
  EXPECT_EQ(r.cache.stores, 0);
}

TEST(FeatureStoreTrainer, StoreSurvivesCrashResumeNextToCheckpoints) {
  // Ground truth: uninterrupted, uncached static-freeze run.
  const uint64_t kSeed = 19;
  uint64_t ref_hash = 0;
  {
    ResNetWorkload w = MakeResNetWorkload(kSeed);
    TrainConfig cfg = StaticFreezeConfig(/*epochs=*/6);
    cfg.egeria.enable_cache = false;
    StaticFreezeHook hook(/*epoch=*/1, /*stage=*/1);
    Trainer trainer(*w.model, *w.train, *w.val, cfg);
    trainer.SetFreezeHook(&hook);
    trainer.Run();
    ref_hash = HashModelState(*w.model);
  }

  // Crash drill: no explicit cache_dir, so the store derives its home from the
  // checkpoint directory (<ckpt>/feature_store) and becomes persistent.
  TempDir dir("fst-resume");
  TrainConfig cfg = StaticFreezeConfig(/*epochs=*/6);
  cfg.egeria.enable_cache = true;
  cfg.checkpoint.dir = dir.path;
  cfg.checkpoint.interval_iters = 8;
  cfg.checkpoint.keep_last = 2;
  {
    ResNetWorkload w = MakeResNetWorkload(kSeed);
    TrainConfig crash = cfg;
    crash.stop_after_iters = 40;  // Mid-epoch-2, after the store populated.
    StaticFreezeHook hook(/*epoch=*/1, /*stage=*/1);
    Trainer first(*w.model, *w.train, *w.val, crash);
    first.SetFreezeHook(&hook);
    TrainResult r1 = first.Run();
    EXPECT_TRUE(r1.stopped_early);
    EXPECT_GT(r1.fp_skip_count, 0) << "store never served before the crash";
  }
  // The dead trainer's store survived in place, manifest and all.
  const std::string store = dir.path + "/feature_store";
  ASSERT_TRUE(fs::exists(store + "/store.manifest"));
  EXPECT_EQ(SpillFileCount(store), 256);

  // "Restart the process": fresh model + trainer + hook against the same
  // checkpoint dir. The restored prefix weights hash to the same generation,
  // so the store is adopted instead of rebuilt, and keeps serving.
  ResNetWorkload w = MakeResNetWorkload(kSeed);
  StaticFreezeHook hook(/*epoch=*/1, /*stage=*/1);
  Trainer second(*w.model, *w.train, *w.val, cfg);
  second.SetFreezeHook(&hook);
  TrainResult r2 = second.Run();
  EXPECT_EQ(r2.resumed_from_iter, 40);
  EXPECT_FALSE(r2.stopped_early);
  EXPECT_GT(r2.cache.adopted, 0) << "resume rebuilt the store instead of adopting";
  EXPECT_GT(r2.fp_skip_count, 0);
  EXPECT_EQ(HashModelState(*w.model), ref_hash)
      << "crash/resume with the persistent store diverged from the "
         "uninterrupted uncached run";
}

}  // namespace
}  // namespace egeria
