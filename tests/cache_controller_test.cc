// Activation cache (store/fetch/prefetch/invalidation), SPSC queue behaviour, and
// controller end-to-end decision flow in synchronous mode.
#include <gtest/gtest.h>

#include <thread>

#include "src/core/activation_cache.h"
#include "src/core/controller.h"
#include "src/core/module_partitioner.h"
#include "src/core/spsc_queue.h"
#include "src/models/resnet.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

std::string TempCacheDir(const char* tag) {
  return ::testing::TempDir() + "/egeria_cache_test_" + tag;
}

TEST(ActivationCache, StoreFetchRoundTrip) {
  ActivationCache cache(TempCacheDir("rt"), /*memory_entries=*/64);
  cache.SetStage(2);
  Rng rng(1);
  Tensor act = Tensor::Randn({4, 3, 2, 2}, rng);
  std::vector<int64_t> ids{10, 20, 30, 40};
  cache.StoreBatch(ids, act);
  ASSERT_TRUE(cache.HasAll(ids));
  Tensor fetched = cache.FetchBatch(ids);
  ASSERT_TRUE(fetched.Defined());
  for (int64_t i = 0; i < act.NumEl(); ++i) {
    EXPECT_EQ(fetched.Data()[i], act.Data()[i]);
  }
}

TEST(ActivationCache, FetchInDifferentOrderReassembles) {
  ActivationCache cache(TempCacheDir("order"), 64);
  cache.SetStage(0);
  Rng rng(2);
  Tensor act = Tensor::Randn({3, 2}, rng);
  cache.StoreBatch({1, 2, 3}, act);
  Tensor fetched = cache.FetchBatch({3, 1, 2});
  ASSERT_TRUE(fetched.Defined());
  EXPECT_EQ(fetched.At(0, 0), act.At(2, 0));
  EXPECT_EQ(fetched.At(1, 0), act.At(0, 0));
  EXPECT_EQ(fetched.At(2, 0), act.At(1, 0));
}

TEST(ActivationCache, MissingIdReturnsUndefined) {
  ActivationCache cache(TempCacheDir("miss"), 64);
  cache.SetStage(0);
  Rng rng(3);
  cache.StoreBatch({1, 2}, Tensor::Randn({2, 4}, rng));
  EXPECT_FALSE(cache.HasAll({1, 2, 3}));
  EXPECT_FALSE(cache.FetchBatch({1, 3}).Defined());
  EXPECT_GT(cache.Stats().misses, 0);
}

TEST(ActivationCache, MemoryEvictionFallsBackToDisk) {
  // Memory keeps only 2 slices; older entries must still be served from disk.
  ActivationCache cache(TempCacheDir("evict"), /*memory_entries=*/2);
  cache.SetStage(1);
  Rng rng(4);
  Tensor act = Tensor::Randn({5, 3}, rng);
  cache.StoreBatch({1, 2, 3, 4, 5}, act);
  ASSERT_TRUE(cache.HasAll({1, 2, 3, 4, 5}));
  Tensor fetched = cache.FetchBatch({1, 2, 3, 4, 5});
  ASSERT_TRUE(fetched.Defined());
  EXPECT_GT(cache.Stats().disk_hits, 0);
  for (int64_t i = 0; i < act.NumEl(); ++i) {
    EXPECT_EQ(fetched.Data()[i], act.Data()[i]);
  }
}

TEST(ActivationCache, StageChangeInvalidates) {
  ActivationCache cache(TempCacheDir("stage"), 64);
  cache.SetStage(0);
  Rng rng(5);
  cache.StoreBatch({7}, Tensor::Randn({1, 4}, rng));
  ASSERT_TRUE(cache.HasAll({7}));
  cache.SetStage(1);  // Frontier advanced: old boundary is useless.
  EXPECT_FALSE(cache.HasAll({7}));
  cache.SetStage(1);  // No-op.
}

TEST(ActivationCache, ClearDropsEverything) {
  ActivationCache cache(TempCacheDir("clear"), 64);
  cache.SetStage(3);
  Rng rng(6);
  cache.StoreBatch({1, 2}, Tensor::Randn({2, 4}, rng));
  cache.Clear();
  EXPECT_FALSE(cache.HasAll({1}));
  EXPECT_EQ(cache.stage(), 3);  // Stage survives Clear (same frontier, new weights).
}

TEST(ActivationCache, PrefetchLoadsIntoMemory) {
  ActivationCache cache(TempCacheDir("prefetch"), /*memory_entries=*/2);
  cache.SetStage(0);
  Rng rng(7);
  Tensor act = Tensor::Randn({4, 8}, rng);
  cache.StoreBatch({1, 2, 3, 4}, act);  // Memory holds only {3, 4} afterwards.
  cache.PrefetchAsync({1, 2});
  // Prefetch is async; poll until it lands.
  for (int i = 0; i < 100 && cache.Stats().prefetch_loads < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(cache.Stats().prefetch_loads, 1);
  Tensor fetched = cache.FetchBatch({1, 2});
  ASSERT_TRUE(fetched.Defined());
}

TEST(ActivationCache, DiskBudgetStopsStores) {
  // Budget allows ~1 slice of 4 floats.
  ActivationCache cache(TempCacheDir("budget"), 64, /*max_disk_bytes=*/20);
  cache.SetStage(0);
  Rng rng(8);
  cache.StoreBatch({1, 2, 3}, Tensor::Randn({3, 4}, rng));
  EXPECT_FALSE(cache.HasAll({1, 2, 3}));  // Later stores were dropped.
}

TEST(SpscQueue, FifoOrderAndCapacity) {
  SpscQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // Full: producer drops.
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_EQ(*q.TryPop(), 2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SpscQueue, PopForTimesOut) {
  SpscQueue<int> q(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(15));
}

TEST(SpscQueue, CrossThreadDelivery) {
  SpscQueue<int> q(128);
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) {
      while (!q.TryPush(i)) {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  while (expected < 1000) {
    if (auto v = q.PopFor(std::chrono::milliseconds(100))) {
      EXPECT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

class ControllerTest : public ::testing::Test {
 protected:
  std::unique_ptr<StageChainModel> MakeModel() {
    Rng rng(11);
    CifarResNetConfig mcfg;
    mcfg.blocks_per_stage = 1;
    mcfg.base_width = 4;
    return PartitionIntoChain("m", BuildCifarResNetBlocks(mcfg, rng),
                              PartitionConfig{.target_modules = 4});
  }

  EgeriaConfig SyncConfig() {
    EgeriaConfig cfg;
    cfg.async_controller = false;
    cfg.window_w = 3;
    cfg.ref_update_evals = 100;  // No refresh during the test.
    return cfg;
  }
};

TEST_F(ControllerTest, ProducesFreezeDecisionSynchronously) {
  auto model = MakeModel();
  EgeriaController controller(SyncConfig(), model->NumStages(), /*annealing=*/true);
  EXPECT_TRUE(controller.WantsSnapshot());
  InferenceFactory float_factory;
  controller.SubmitSnapshot(model->CloneForInference(float_factory));
  controller.RunPendingSync();
  EXPECT_TRUE(controller.HasReference());

  // Identical model & reference (modulo int8) with frozen weights: plasticity is
  // constant, so after 3 (tolerance) + window evaluations the stage must freeze.
  Rng rng(12);
  model->SetTraining(false);  // Keep BN deterministic across evals.
  Batch batch;
  batch.input = Tensor::Randn({4, 3, 8, 8}, rng);
  std::vector<FreezeDecision> decisions;
  for (int64_t iter = 1; iter <= 12 && decisions.empty(); ++iter) {
    model->ForwardFrom(0, batch.input);
    EvalRequest req;
    req.batch = batch;
    req.train_act = model->StageOutput(0);
    req.stage = 0;
    req.lr = 0.1F;
    req.iter = iter;
    ASSERT_TRUE(controller.SubmitEval(std::move(req)));
    controller.RunPendingSync();
    decisions = controller.DrainDecisions();
  }
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, FreezeDecision::Kind::kFreezeUpTo);
  EXPECT_EQ(decisions[0].stage, 0);
  EXPECT_EQ(controller.Frontier(), 1);
  EXPECT_GE(controller.EvalsDone(), 6);
  EXPECT_FALSE(controller.PlasticityHistory().empty());
  EXPECT_GT(controller.LastQuantizeSeconds(), 0.0);
}

TEST_F(ControllerTest, RequestsSnapshotRefresh) {
  auto model = MakeModel();
  EgeriaConfig cfg = SyncConfig();
  cfg.ref_update_evals = 2;
  EgeriaController controller(cfg, model->NumStages(), true);
  InferenceFactory float_factory;
  controller.SubmitSnapshot(model->CloneForInference(float_factory));
  controller.RunPendingSync();
  EXPECT_FALSE(controller.WantsSnapshot());

  Rng rng(13);
  model->SetTraining(false);
  Batch batch;
  batch.input = Tensor::Randn({2, 3, 8, 8}, rng);
  for (int64_t iter = 1; iter <= 2; ++iter) {
    model->ForwardFrom(0, batch.input);
    EvalRequest req;
    req.batch = batch;
    req.train_act = model->StageOutput(0);
    req.stage = 0;
    req.lr = 0.1F;
    req.iter = iter;
    controller.SubmitEval(std::move(req));
    controller.RunPendingSync();
  }
  EXPECT_TRUE(controller.WantsSnapshot());
}

}  // namespace
}  // namespace egeria
